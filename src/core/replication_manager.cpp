#include "core/replication_manager.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <utility>

#include "common/ensure.h"
#include "common/random.h"
#include "common/serialize.h"
#include "common/thread_pool.h"
#include "placement/evaluate.h"
#include "placement/random_placement.h"

namespace geored::core {

EpochPipeline standard_pipeline(const ManagerConfig& config) {
  EpochPipeline pipeline;
  pipeline.collector = std::make_unique<DirectCollector>();
  pipeline.proposer =
      std::make_unique<ClusteringProposer>(config.strategy, config.warm_start_macro_clusters);
  pipeline.gate = std::make_unique<PolicyGate>(config.migration);
  pipeline.adopter = std::make_unique<NearestRedistributionAdopter>();
  return pipeline;
}

ReplicationManager::ReplicationManager(std::vector<place::CandidateInfo> candidates,
                                       ManagerConfig config, std::uint64_t seed)
    : ReplicationManager(std::move(candidates), config, seed, standard_pipeline(config)) {}

ReplicationManager::ReplicationManager(std::vector<place::CandidateInfo> candidates,
                                       ManagerConfig config, std::uint64_t seed,
                                       EpochPipeline pipeline)
    : candidates_(std::move(candidates)),
      config_(config),
      seed_(seed),
      degree_(config.replication_degree),
      pipeline_(std::move(pipeline)) {
  GEORED_ENSURE(!candidates_.empty(), "manager needs at least one candidate data center");
  GEORED_ENSURE(config_.replication_degree >= 1, "replication degree must be >= 1");
  GEORED_ENSURE(config_.min_degree >= 1 && config_.min_degree <= config_.max_degree,
                "degree bounds must satisfy 1 <= min <= max");
  GEORED_ENSURE(pipeline_.collector && pipeline_.proposer && pipeline_.gate && pipeline_.adopter,
                "every epoch pipeline stage must be set");
  GEORED_ENSURE(config_.ingest_batch_grain >= 1, "ingest_batch_grain must be >= 1");
  GEORED_ENSURE(config_.ingest_shards >= 1, "ingest_shards must be >= 1");
  degree_ = std::clamp(degree_, config_.min_degree, config_.max_degree);
  ingest_shards_.reserve(config_.ingest_shards);
  for (std::size_t s = 0; s < config_.ingest_shards; ++s) {
    ingest_shards_.push_back(std::make_unique<IngestShard>());
  }

  place::PlacementInput input;
  input.candidates = candidates_;
  input.k = degree_;
  input.seed = seed_;
  placement_ = place::RandomPlacement().place(input);
  for (const auto node : placement_) {
    summarizers_.emplace(node, cluster::MicroClusterSummarizer(config_.summarizer));
  }
}

const place::CandidateInfo& ReplicationManager::candidate_info(topo::NodeId node) const {
  const auto it = std::find_if(candidates_.begin(), candidates_.end(),
                               [node](const place::CandidateInfo& c) { return c.node == node; });
  GEORED_ENSURE(it != candidates_.end(), "node is not a candidate data center");
  return *it;
}

topo::NodeId ReplicationManager::serve(const Point& client_coords, double data_weight) {
  GEORED_CHECK(!placement_.empty(), "manager has no replicas");
  const auto best = route(client_coords);
  record_access(*best, client_coords, data_weight);
  return *best;
}

std::optional<topo::NodeId> ReplicationManager::route(const Point& client_coords,
                                                      const std::set<topo::NodeId>& down) const {
  std::optional<topo::NodeId> best;
  double best_dist = std::numeric_limits<double>::infinity();
  for (const auto node : placement_) {
    if (down.contains(node)) continue;
    const double dist = client_coords.distance_squared_to(candidate_info(node).coords);
    if (dist < best_dist) {
      best_dist = dist;
      best = node;
    }
  }
  return best;
}

void ReplicationManager::record_access(topo::NodeId replica, const Point& client_coords,
                                       double data_weight) {
  const auto it = summarizers_.find(replica);
  GEORED_ENSURE(it != summarizers_.end(), "node does not currently hold a replica");
  GEORED_ENSURE(std::isfinite(data_weight) && data_weight >= 0.0,
                "access weight must be finite and non-negative");
  IngestShard& shard = shard_of(replica);
  const MutexLock lock(shard.mutex);
  PendingBatch& batch = shard.pending[replica];
  batch.coords.push_back(client_coords);
  batch.weights.push_back(data_weight);
  ++shard.accesses;
  if (batch.coords.size() >= config_.ingest_batch_grain) {
    // Grain-triggered ingestion under the shard lock is race-free: this
    // replica's summarizer is only ever written under this same shard's
    // mutex (replica -> shard is a fixed mapping) or with every shard held.
    it->second.add_batch(batch.coords, batch.weights);
    batch.coords.clear();
    batch.weights.clear();
  }
}

void ReplicationManager::record_access_batch(topo::NodeId replica, const PointSet& client_coords,
                                             std::span<const double> data_weights) {
  const auto it = summarizers_.find(replica);
  GEORED_ENSURE(it != summarizers_.end(), "node does not currently hold a replica");
  GEORED_ENSURE(data_weights.empty() || data_weights.size() == client_coords.size(),
                "access weight count must match coordinate row count");
  for (const double weight : data_weights) {
    GEORED_ENSURE(std::isfinite(weight) && weight >= 0.0,
                  "access weight must be finite and non-negative");
  }
  const std::size_t n = client_coords.size();
  if (n == 0) return;
  IngestShard& shard = shard_of(replica);
  const MutexLock lock(shard.mutex);
  PendingBatch& batch = shard.pending[replica];
  batch.coords.append_rows(client_coords.row(0), n, client_coords.dim());
  if (data_weights.empty()) {
    batch.weights.insert(batch.weights.end(), n, 1.0);
  } else {
    batch.weights.insert(batch.weights.end(), data_weights.begin(), data_weights.end());
  }
  shard.accesses += n;
  if (batch.coords.size() >= config_.ingest_batch_grain) {
    // Same single-writer argument as record_access: the shard mutex is the
    // one lock this replica's summarizer is ever written under.
    it->second.add_batch(batch.coords, batch.weights);
    batch.coords.clear();
    batch.weights.clear();
  }
}

// Thread-safety analysis is disabled here because the flush acquires a
// runtime-sized family of shard mutexes in a loop — a pattern TSA cannot
// verify (it reasons about lexical capability expressions, not loop-carried
// lock sets). The discipline it would otherwise check is simple and local:
// every shard mutex is acquired in ascending index order (the single global
// acquisition order, so flushes never deadlock each other or the record
// paths, which take exactly one shard), all staged state is read only while
// every lock is held, and every lock is released on exit.
void ReplicationManager::flush_ingest() const GEORED_NO_THREAD_SAFETY_ANALYSIS {
  for (auto& shard : ingest_shards_) shard->mutex.lock();
  // Gather the replicas with staged accesses across all shards, sorted by
  // node id, so the work list — and thus which summarizer each parallel
  // chunk touches — is deterministic and independent of the shard count
  // (each replica lives in exactly one shard, so the merge is a disjoint
  // union). Each replica's stream ingests sequentially in recorded order;
  // replicas are independent, so any thread count yields bytewise the same
  // summaries. Every shard mutex stays held across the parallel ingest
  // (chunks never take them), so concurrent record calls wait for the
  // flush instead of staging into batches mid-drain.
  struct WorkItem {
    topo::NodeId node;
    PendingBatch* batch;
    cluster::MicroClusterSummarizer* summarizer;
  };
  std::vector<WorkItem> work;
  for (auto& shard : ingest_shards_) {
    for (auto& [node, batch] : shard->pending) {
      if (batch.coords.empty()) continue;
      work.push_back({node, &batch, &summarizers_.at(node)});
    }
  }
  std::sort(work.begin(), work.end(),
            [](const WorkItem& a, const WorkItem& b) { return a.node < b.node; });
  if (!work.empty()) {
    parallel_for(
        work.size(),
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            work[i].summarizer->add_batch(work[i].batch->coords, work[i].batch->weights);
            work[i].batch->coords.clear();
            work[i].batch->weights.clear();
          }
        },
        /*min_parallel=*/2);
  }
  for (auto it = ingest_shards_.rbegin(); it != ingest_shards_.rend(); ++it) {
    (*it)->mutex.unlock();
  }
}

std::uint64_t ReplicationManager::epoch_accesses() const {
  std::uint64_t total = 0;
  for (const auto& shard : ingest_shards_) {
    const MutexLock lock(shard->mutex);
    total += shard->accesses;
  }
  return total;
}

const std::vector<cluster::MicroCluster>& ReplicationManager::summary_of(
    topo::NodeId replica) const {
  flush_ingest();
  const auto it = summarizers_.find(replica);
  GEORED_ENSURE(it != summarizers_.end(), "node does not currently hold a replica");
  return it->second.clusters();
}

double ReplicationManager::estimate_average_delay(
    const place::Placement& placement,
    const std::vector<cluster::MicroCluster>& summaries) const {
  // Per-access delay estimated from the summaries themselves: each
  // micro-cluster's population is assumed to sit at its centroid and read
  // from the nearest replica (in coordinate space).
  double total = 0.0, accesses = 0.0;
  for (const auto& micro : summaries) {
    if (micro.count() == 0) continue;
    const Point centroid = micro.centroid();
    double best = std::numeric_limits<double>::infinity();
    for (const auto node : placement) {
      best = std::min(best, centroid.distance_to(candidate_info(node).coords));
    }
    total += best * static_cast<double>(micro.count());
    accesses += static_cast<double>(micro.count());
  }
  return accesses > 0.0 ? total / accesses : 0.0;
}

void ReplicationManager::maybe_adjust_degree(std::uint64_t epoch_accesses) {
  if (!config_.dynamic_degree) return;
  const auto accesses = static_cast<double>(epoch_accesses);
  const auto replicas = static_cast<double>(degree_);
  if (accesses > config_.grow_accesses_per_replica * replicas &&
      degree_ < config_.max_degree) {
    ++degree_;
  } else if (accesses < config_.shrink_accesses_per_replica * replicas &&
             degree_ > config_.min_degree) {
    --degree_;
  }
}

void ReplicationManager::set_degree(std::size_t degree) {
  GEORED_ENSURE(degree >= 1, "replication degree must be >= 1");
  degree_ = std::clamp(degree, config_.min_degree, config_.max_degree);
  budget_granted_ = true;
}

void ReplicationManager::set_budget_weight(double weight) {
  GEORED_ENSURE(std::isfinite(weight) && weight > 0.0,
                "budget weight must be positive and finite");
  budget_weight_ = weight;
}

std::vector<double> ReplicationManager::delay_by_degree_curve(std::size_t min_degree,
                                                              std::size_t max_degree) const {
  GEORED_ENSURE(min_degree >= 1 && min_degree <= max_degree,
                "degree bounds must satisfy 1 <= min <= max");
  flush_ingest();
  std::vector<cluster::MicroCluster> summaries;
  double weight = 0.0;
  for (const auto& [node, summarizer] : summarizers_) {
    for (const auto& micro : summarizer.clusters()) {
      summaries.push_back(micro);
      weight += static_cast<double>(micro.count());
    }
  }
  // A cold-start probe of the registry's online-clustering strategy; the
  // epoch proposer is left untouched so probing cannot perturb warm starts.
  const auto probe = place::make_strategy("online");
  std::vector<double> curve;
  curve.reserve(max_degree - min_degree + 1);
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t k = min_degree; k <= max_degree; ++k) {
    place::PlacementInput input;
    input.candidates = candidates_;
    input.k = k;
    input.summaries = summaries;
    // A seed stream distinct from the epoch proposals', so the probe and
    // the next run_epoch never correlate.
    input.seed = seed_ ^ (0xd1b54a32d192ed03ULL + epoch_index_);
    const double per_access = estimate_average_delay(probe->place(input), summaries);
    // More replicas can only help; clustering noise may say otherwise, so
    // each level is floored by its predecessors — the allocator requires a
    // non-increasing curve.
    best = std::min(best, per_access);
    // Scaled by summarized access weight: the budget allocator compares
    // absolute delay totals across groups, and hot objects matter more.
    curve.push_back(best * weight);
  }
  return curve;
}

void ReplicationManager::save(ByteWriter& writer) const {
  flush_ingest();
  writer.write_u32(kCheckpointMagic);
  writer.write_u32(kCheckpointVersion);
  writer.write_u64(epoch_index_);
  writer.write_u64(this->epoch_accesses());
  writer.write_u64(degree_);
  // v2: the external budget state, so a restored stand-by resumes a fleet
  // allocator's decisions instead of reverting to the configured defaults.
  writer.write_u32(budget_granted_ ? 1 : 0);
  writer.write_f64(budget_weight_);
  writer.write_u32(static_cast<std::uint32_t>(placement_.size()));
  for (const auto node : placement_) writer.write_u32(node);
  for (const auto node : placement_) {
    summarizers_.at(node).serialize(writer);
  }
  const std::vector<Point> centroids = pipeline_.proposer->warm_centroids();
  writer.write_u32(static_cast<std::uint32_t>(centroids.size()));
  for (const auto& centroid : centroids) {
    writer.write_f64_vector(centroid.values());
  }
}

void ReplicationManager::restore(ByteReader& reader) {
  // Drain staged accesses into the summarizers being replaced, matching the
  // unbatched semantics where every recorded access had been ingested by
  // the time restore ran.
  flush_ingest();
  const std::uint32_t magic = reader.read_u32();
  GEORED_ENSURE(magic == kCheckpointMagic,
                "not a replication-manager checkpoint (bad magic)");
  const std::uint32_t version = reader.read_u32();
  GEORED_ENSURE(version >= 1 && version <= kCheckpointVersion,
                "unsupported checkpoint format version " + std::to_string(version) +
                    " (this build reads versions 1.." + std::to_string(kCheckpointVersion) + ")");
  const std::uint64_t epoch_index = reader.read_u64();
  const std::uint64_t epoch_accesses = reader.read_u64();
  const auto degree = static_cast<std::size_t>(reader.read_u64());
  GEORED_ENSURE(degree >= 1, "corrupt checkpoint: zero degree");
  // v1 predates external budget state; restore the documented defaults
  // (no grant recorded, neutral weight).
  bool budget_granted = false;
  double budget_weight = 1.0;
  if (version >= 2) {
    budget_granted = reader.read_u32() != 0;
    budget_weight = reader.read_f64();
    GEORED_ENSURE(std::isfinite(budget_weight) && budget_weight > 0.0,
                  "corrupt checkpoint: budget weight must be positive and finite");
  }
  const std::uint32_t placement_size = reader.read_u32();
  place::Placement placement;
  placement.reserve(placement_size);
  for (std::uint32_t i = 0; i < placement_size; ++i) {
    const topo::NodeId node = reader.read_u32();
    candidate_info(node);  // throws for unknown candidates
    placement.push_back(node);
  }
  std::map<topo::NodeId, cluster::MicroClusterSummarizer> summarizers;
  for (const auto node : placement) {
    cluster::MicroClusterSummarizer summarizer(config_.summarizer);
    for (const auto& micro : cluster::MicroClusterSummarizer::deserialize_clusters(reader)) {
      summarizer.merge_cluster(micro);
    }
    summarizers.emplace(node, std::move(summarizer));
  }
  const std::uint32_t centroid_count = reader.read_u32();
  std::vector<Point> centroids;
  centroids.reserve(centroid_count);
  for (std::uint32_t i = 0; i < centroid_count; ++i) {
    centroids.emplace_back(reader.read_f64_vector());
  }
  // All parsed and validated: commit. The restored access count lands in
  // shard 0 (the sum across shards is the observable value; its split is
  // staging layout, not state).
  epoch_index_ = epoch_index;
  for (std::size_t s = 0; s < ingest_shards_.size(); ++s) {
    const MutexLock lock(ingest_shards_[s]->mutex);
    ingest_shards_[s]->accesses = s == 0 ? epoch_accesses : 0;
  }
  degree_ = degree;
  budget_granted_ = budget_granted;
  budget_weight_ = budget_weight;
  placement_ = std::move(placement);
  summarizers_ = std::move(summarizers);
  pipeline_.proposer->set_warm_centroids(std::move(centroids));
}

EpochReport ReplicationManager::run_epoch(const std::set<topo::NodeId>& excluded) {
  EpochReport report;
  {
    const StageTimer timer(report.stages.ingest_flush_ms);
    flush_ingest();
  }
  report.old_placement = placement_;
  report.epoch_accesses = epoch_accesses();

  // Candidates usable this epoch.
  std::vector<place::CandidateInfo> usable;
  usable.reserve(candidates_.size());
  for (const auto& candidate : candidates_) {
    if (!excluded.contains(candidate.node)) usable.push_back(candidate);
  }
  GEORED_ENSURE(!usable.empty(), "every candidate data center is excluded");
  bool current_placement_impaired = false;
  for (const auto node : placement_) {
    if (excluded.contains(node)) current_placement_impaired = true;
  }

  // 1. Demand-adaptive degree. Adjusted before collection so protocol
  //    collectors see the k actually in force this epoch; collection reads
  //    neither the degree nor the access counter, so the order cannot
  //    change results.
  maybe_adjust_degree(report.epoch_accesses);
  report.degree = degree_;

  // 2. Collect summaries from every replica (and account their wire size —
  //    this is the O(km) bandwidth of Table II). A replica on an excluded
  //    (failed) data center cannot report: its summary is skipped and the
  //    source accounted as lost, exactly like a collection-protocol loss —
  //    the epoch proceeds on what the live replicas know.
  std::vector<SummarySource> sources;
  sources.reserve(summarizers_.size());
  std::size_t excluded_sources = 0;
  for (const auto& [node, summarizer] : summarizers_) {
    if (excluded.contains(node)) {
      ++excluded_sources;
      continue;
    }
    sources.push_back({node, summarizer.clusters()});
  }
  const std::uint64_t epoch_seed = seed_ ^ (0x9e3779b97f4a7c15ULL + epoch_index_);
  CollectedSummaries collected = [&] {
    const StageTimer timer(report.stages.collect_ms);
    return pipeline_.collector->collect(sources, {usable, degree_, epoch_seed});
  }();
  report.summary_bytes = collected.summary_bytes;
  report.stale_sources = collected.stale_sources.size();
  report.lost_sources = collected.lost_sources.size() + excluded_sources;

  // 3. Propose a placement via the proposer stage over the usable
  //    candidates — unless the collection protocol already agreed on one
  //    (decentralized collection decides in-protocol).
  if (collected.agreed_proposal.has_value()) {
    report.proposed_placement = std::move(*collected.agreed_proposal);
  } else {
    const StageTimer timer(report.stages.propose_ms);
    place::PlacementInput input;
    input.candidates = usable;
    input.k = degree_;
    input.summaries = collected.summaries;
    input.seed = epoch_seed;
    report.proposed_placement = pipeline_.proposer->propose(input);
  }

  // 4. Migration gate.
  {
    const StageTimer timer(report.stages.gate_ms);
    report.old_estimated_delay_ms = estimate_average_delay(placement_, collected.summaries);
    report.new_estimated_delay_ms =
        estimate_average_delay(report.proposed_placement, collected.summaries);
    std::size_t moved = 0;
    for (const auto node : report.proposed_placement) {
      if (std::find(placement_.begin(), placement_.end(), node) == placement_.end()) ++moved;
    }
    report.replicas_moved = moved;
    report.decision = pipeline_.gate->evaluate(report.old_estimated_delay_ms,
                                               report.new_estimated_delay_ms, moved);
  }

  // 5. Adopt or retain. A degree change must be applied even if the gate
  // rejects the proposal's quality gain; in that case adopt the proposal
  // anyway (capacity change dominates cost considerations here, as in the
  // paper's discussion). Likewise when a current replica sits on an
  // excluded (failed) data center: availability overrides the cost gate.
  const bool degree_changed = report.proposed_placement.size() != placement_.size();
  {
    const StageTimer timer(report.stages.adopt_ms);
    if (report.decision.migrate || degree_changed || current_placement_impaired) {
      placement_ = report.proposed_placement;
      pipeline_.adopter->adopt(placement_, collected.summaries, candidates_,
                               config_.summarizer, summarizers_);
    } else {
      pipeline_.adopter->retain(summarizers_);
    }
  }
  report.adopted_placement = placement_;

  for (const auto& shard : ingest_shards_) {
    const MutexLock lock(shard->mutex);
    shard->accesses = 0;
  }
  ++epoch_index_;
  return report;
}

}  // namespace geored::core
