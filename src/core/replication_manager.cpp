#include "core/replication_manager.h"

#include <algorithm>
#include <limits>

#include "common/ensure.h"
#include "common/random.h"
#include "common/serialize.h"
#include "placement/evaluate.h"
#include "placement/random_placement.h"

namespace geored::core {

ReplicationManager::ReplicationManager(std::vector<place::CandidateInfo> candidates,
                                       ManagerConfig config, std::uint64_t seed)
    : candidates_(std::move(candidates)),
      config_(config),
      seed_(seed),
      degree_(config.replication_degree) {
  GEORED_ENSURE(!candidates_.empty(), "manager needs at least one candidate data center");
  GEORED_ENSURE(config_.replication_degree >= 1, "replication degree must be >= 1");
  GEORED_ENSURE(config_.min_degree >= 1 && config_.min_degree <= config_.max_degree,
                "degree bounds must satisfy 1 <= min <= max");
  degree_ = std::clamp(degree_, config_.min_degree, config_.max_degree);

  place::PlacementInput input;
  input.candidates = candidates_;
  input.k = degree_;
  input.seed = seed_;
  placement_ = place::RandomPlacement().place(input);
  for (const auto node : placement_) {
    summarizers_.emplace(node, cluster::MicroClusterSummarizer(config_.summarizer));
  }
}

const place::CandidateInfo& ReplicationManager::candidate_info(topo::NodeId node) const {
  const auto it = std::find_if(candidates_.begin(), candidates_.end(),
                               [node](const place::CandidateInfo& c) { return c.node == node; });
  GEORED_ENSURE(it != candidates_.end(), "node is not a candidate data center");
  return *it;
}

topo::NodeId ReplicationManager::serve(const Point& client_coords, double data_weight) {
  GEORED_CHECK(!placement_.empty(), "manager has no replicas");
  topo::NodeId best = placement_.front();
  double best_dist = std::numeric_limits<double>::infinity();
  for (const auto node : placement_) {
    const double dist = client_coords.distance_squared_to(candidate_info(node).coords);
    if (dist < best_dist) {
      best_dist = dist;
      best = node;
    }
  }
  record_access(best, client_coords, data_weight);
  return best;
}

void ReplicationManager::record_access(topo::NodeId replica, const Point& client_coords,
                                       double data_weight) {
  const auto it = summarizers_.find(replica);
  GEORED_ENSURE(it != summarizers_.end(), "node does not currently hold a replica");
  it->second.add(client_coords, data_weight);
  ++epoch_accesses_;
}

const std::vector<cluster::MicroCluster>& ReplicationManager::summary_of(
    topo::NodeId replica) const {
  const auto it = summarizers_.find(replica);
  GEORED_ENSURE(it != summarizers_.end(), "node does not currently hold a replica");
  return it->second.clusters();
}

double ReplicationManager::estimate_average_delay(
    const place::Placement& placement,
    const std::vector<cluster::MicroCluster>& summaries) const {
  // Per-access delay estimated from the summaries themselves: each
  // micro-cluster's population is assumed to sit at its centroid and read
  // from the nearest replica (in coordinate space).
  double total = 0.0, accesses = 0.0;
  for (const auto& micro : summaries) {
    if (micro.count() == 0) continue;
    const Point centroid = micro.centroid();
    double best = std::numeric_limits<double>::infinity();
    for (const auto node : placement) {
      best = std::min(best, centroid.distance_to(candidate_info(node).coords));
    }
    total += best * static_cast<double>(micro.count());
    accesses += static_cast<double>(micro.count());
  }
  return accesses > 0.0 ? total / accesses : 0.0;
}

void ReplicationManager::adopt_placement(const place::Placement& next,
                                         const std::vector<cluster::MicroCluster>& summaries) {
  // Rebuild the per-replica summarizers, handing each existing micro-cluster
  // to the new replica closest to its centroid so usage knowledge survives
  // the move.
  std::map<topo::NodeId, cluster::MicroClusterSummarizer> fresh;
  for (const auto node : next) {
    fresh.emplace(node, cluster::MicroClusterSummarizer(config_.summarizer));
  }
  placement_ = next;
  summarizers_ = std::move(fresh);
  for (const auto& micro : summaries) {
    if (micro.count() == 0) continue;
    const Point centroid = micro.centroid();
    topo::NodeId best = placement_.front();
    double best_dist = std::numeric_limits<double>::infinity();
    for (const auto node : placement_) {
      const double dist = centroid.distance_squared_to(candidate_info(node).coords);
      if (dist < best_dist) {
        best_dist = dist;
        best = node;
      }
    }
    summarizers_.at(best).merge_cluster(micro);
  }
}

void ReplicationManager::maybe_adjust_degree() {
  if (!config_.dynamic_degree) return;
  const auto accesses = static_cast<double>(epoch_accesses_);
  const auto replicas = static_cast<double>(degree_);
  if (accesses > config_.grow_accesses_per_replica * replicas &&
      degree_ < config_.max_degree) {
    ++degree_;
  } else if (accesses < config_.shrink_accesses_per_replica * replicas &&
             degree_ > config_.min_degree) {
    --degree_;
  }
}

void ReplicationManager::save(ByteWriter& writer) const {
  writer.write_u64(epoch_index_);
  writer.write_u64(epoch_accesses_);
  writer.write_u64(degree_);
  writer.write_u32(static_cast<std::uint32_t>(placement_.size()));
  for (const auto node : placement_) writer.write_u32(node);
  for (const auto node : placement_) {
    summarizers_.at(node).serialize(writer);
  }
  writer.write_u32(static_cast<std::uint32_t>(last_macro_centroids_.size()));
  for (const auto& centroid : last_macro_centroids_) {
    writer.write_f64_vector(centroid.values());
  }
}

void ReplicationManager::restore(ByteReader& reader) {
  const std::uint64_t epoch_index = reader.read_u64();
  const std::uint64_t epoch_accesses = reader.read_u64();
  const auto degree = static_cast<std::size_t>(reader.read_u64());
  GEORED_ENSURE(degree >= 1, "corrupt checkpoint: zero degree");
  const std::uint32_t placement_size = reader.read_u32();
  place::Placement placement;
  placement.reserve(placement_size);
  for (std::uint32_t i = 0; i < placement_size; ++i) {
    const topo::NodeId node = reader.read_u32();
    candidate_info(node);  // throws for unknown candidates
    placement.push_back(node);
  }
  std::map<topo::NodeId, cluster::MicroClusterSummarizer> summarizers;
  for (const auto node : placement) {
    cluster::MicroClusterSummarizer summarizer(config_.summarizer);
    for (const auto& micro : cluster::MicroClusterSummarizer::deserialize_clusters(reader)) {
      summarizer.merge_cluster(micro);
    }
    summarizers.emplace(node, std::move(summarizer));
  }
  const std::uint32_t centroid_count = reader.read_u32();
  std::vector<Point> centroids;
  centroids.reserve(centroid_count);
  for (std::uint32_t i = 0; i < centroid_count; ++i) {
    centroids.emplace_back(reader.read_f64_vector());
  }
  // All parsed and validated: commit.
  epoch_index_ = epoch_index;
  epoch_accesses_ = epoch_accesses;
  degree_ = degree;
  placement_ = std::move(placement);
  summarizers_ = std::move(summarizers);
  last_macro_centroids_ = std::move(centroids);
}

EpochReport ReplicationManager::run_epoch(const std::set<topo::NodeId>& excluded) {
  EpochReport report;
  report.old_placement = placement_;
  report.epoch_accesses = epoch_accesses_;

  // Candidates usable this epoch.
  std::vector<place::CandidateInfo> usable;
  usable.reserve(candidates_.size());
  for (const auto& candidate : candidates_) {
    if (!excluded.contains(candidate.node)) usable.push_back(candidate);
  }
  GEORED_ENSURE(!usable.empty(), "every candidate data center is excluded");
  bool current_placement_impaired = false;
  for (const auto node : placement_) {
    if (excluded.contains(node)) current_placement_impaired = true;
  }

  // 1. Collect summaries from every replica (and account their wire size —
  //    this is the O(km) bandwidth of Table II).
  std::vector<cluster::MicroCluster> summaries;
  ByteWriter writer;
  for (const auto& [node, summarizer] : summarizers_) {
    summarizer.serialize(writer);
    for (const auto& micro : summarizer.clusters()) summaries.push_back(micro);
  }
  report.summary_bytes = writer.size();

  // 2. Demand-adaptive degree.
  maybe_adjust_degree();
  report.degree = degree_;

  // 3. Propose a placement via Algorithm 1 over the usable candidates.
  place::PlacementInput input;
  input.candidates = usable;
  input.k = degree_;
  input.summaries = summaries;
  input.seed = seed_ ^ (0x9e3779b97f4a7c15ULL + epoch_index_);
  place::OnlineClusteringConfig strategy_config = config_.strategy;
  if (config_.warm_start_macro_clusters) {
    strategy_config.warm_start_centroids = last_macro_centroids_;
  }
  place::OnlineClusteringPlacement strategy(strategy_config);
  auto details = strategy.place_detailed(input);
  report.proposed_placement = std::move(details.placement);
  last_macro_centroids_ = std::move(details.macro_centroids);

  // 4. Migration gate.
  report.old_estimated_delay_ms = estimate_average_delay(placement_, summaries);
  report.new_estimated_delay_ms =
      estimate_average_delay(report.proposed_placement, summaries);
  std::size_t moved = 0;
  for (const auto node : report.proposed_placement) {
    if (std::find(placement_.begin(), placement_.end(), node) == placement_.end()) ++moved;
  }
  report.replicas_moved = moved;
  report.decision = decide_migration(config_.migration, report.old_estimated_delay_ms,
                                     report.new_estimated_delay_ms, moved);

  // A degree change must be applied even if the gate rejects the proposal's
  // quality gain; in that case adopt the proposal anyway (capacity change
  // dominates cost considerations here, as in the paper's discussion).
  // Likewise when a current replica sits on an excluded (failed) data
  // center: availability overrides the cost gate.
  const bool degree_changed = report.proposed_placement.size() != placement_.size();
  if (report.decision.migrate || degree_changed || current_placement_impaired) {
    adopt_placement(report.proposed_placement, summaries);
  } else {
    // Age the retained summaries so stale populations fade (recency).
    for (auto& [node, summarizer] : summarizers_) summarizer.decay();
  }
  report.adopted_placement = placement_;

  epoch_accesses_ = 0;
  ++epoch_index_;
  return report;
}

}  // namespace geored::core
