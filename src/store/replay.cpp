#include "store/replay.h"

#include <memory>
#include <set>

#include "common/ensure.h"

namespace geored::store {

ReplayReport replay_trace(sim::Simulator& simulator, ReplicatedKvStore& store,
                          const wl::Trace& trace,
                          const std::vector<topo::NodeId>& client_nodes,
                          const std::vector<Point>& client_coords,
                          const ReplayConfig& config) {
  GEORED_ENSURE(!client_nodes.empty(), "replay needs at least one client node");
  GEORED_ENSURE(client_nodes.size() == client_coords.size(),
                "one coordinate per client node required");
  GEORED_ENSURE(config.placement_epoch_ms >= 0.0, "epoch period must be non-negative");

  ReplayReport report;
  if (trace.empty()) return report;

  // Seed every object that the trace ever touches so reads can succeed
  // even when they precede the trace's first write of that object.
  if (config.seed_objects) {
    std::set<std::uint64_t> objects;
    for (const auto& event : trace.events()) objects.insert(event.object);
    std::size_t i = 0;
    for (const auto object : objects) {
      const std::size_t c = i++ % client_nodes.size();
      store.put(client_nodes[c], client_coords[c], object, std::string(128, 's'),
                [](const PutResult&) {});
    }
    simulator.run();
  }

  // Seeding consumed some virtual time; replay the trace's timeline shifted
  // past it so no event lands in the simulator's past.
  const double offset = simulator.now();
  const double horizon = offset + trace.duration_ms() + 1.0;
  struct EpochWindow {
    double get_sum = 0.0;
    std::uint64_t gets = 0;
  };
  auto window = std::make_shared<EpochWindow>();

  // Placement epochs.
  if (config.placement_epoch_ms > 0.0) {
    for (double t = offset + config.placement_epoch_ms; t <= horizon;
         t += config.placement_epoch_ms) {
      simulator.schedule_at(t, [&simulator, &store, &report, window] {
        for (const auto& epoch_report : store.run_placement_epochs()) {
          report.migrations += epoch_report.decision.migrate ? 1 : 0;
        }
        ++report.epochs;
        report.get_mean_by_epoch.push_back(
            window->gets > 0 ? window->get_sum / static_cast<double>(window->gets) : 0.0);
        *window = EpochWindow{};
      });
    }
  }

  // The trace itself.
  for (const auto& event : trace.events()) {
    const std::size_t c = event.client % client_nodes.size();
    const topo::NodeId node = client_nodes[c];
    const Point& coords = client_coords[c];
    simulator.schedule_at(offset + event.time_ms, [&store, window, node, coords, event] {
      if (event.is_write) {
        store.put(node, coords, event.object, std::string(event.bytes, 'd'),
                  [](const PutResult&) {});
      } else {
        store.get(node, coords, event.object, [window](const GetResult& result) {
          window->get_sum += result.latency_ms;
          ++window->gets;
        });
      }
    });
  }

  simulator.run();

  report.reads = store.reads();
  report.writes = store.writes();
  report.stale_reads = store.stale_reads();
  report.not_found_reads = store.not_found_reads();
  report.get_mean_ms = store.get_latency().mean();
  report.put_mean_ms = store.put_latency().mean();
  return report;
}

}  // namespace geored::store
