// Trace replay against the replicated key-value store: feed a recorded (or
// synthesized) access trace through the full system — quorum reads/writes,
// per-group summarization, periodic placement epochs with migration — and
// report what the service experienced.
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "store/kvstore.h"
#include "workload/trace.h"

namespace geored::store {

struct ReplayConfig {
  /// Placement epoch period; 0 disables placement (static replicas).
  double placement_epoch_ms = 60'000.0;
  /// Written objects are seeded once at t=0 so early reads can hit.
  bool seed_objects = true;
};

struct ReplayReport {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t stale_reads = 0;
  std::uint64_t not_found_reads = 0;
  double get_mean_ms = 0.0;
  double put_mean_ms = 0.0;
  std::size_t epochs = 0;
  std::size_t migrations = 0;
  /// Mean read latency per epoch window (shows placement converging).
  std::vector<double> get_mean_by_epoch;
};

/// Replays `trace` into `store` on `simulator`. Event client index i is
/// mapped to node client_nodes[i % size] with coordinates client_coords of
/// the same index. The store must be freshly constructed (metrics at zero).
ReplayReport replay_trace(sim::Simulator& simulator, ReplicatedKvStore& store,
                          const wl::Trace& trace,
                          const std::vector<topo::NodeId>& client_nodes,
                          const std::vector<Point>& client_coords,
                          const ReplayConfig& config = {});

}  // namespace geored::store
