#include "store/kvstore.h"

#include <algorithm>
#include <limits>

#include "common/ensure.h"

namespace geored::store {

ReplicatedKvStore::ReplicatedKvStore(sim::Simulator& simulator, sim::Network& network,
                                     std::vector<place::CandidateInfo> candidates,
                                     StoreConfig config, std::uint64_t seed)
    : simulator_(simulator),
      network_(network),
      candidates_(std::move(candidates)),
      config_(config),
      seed_(seed) {
  GEORED_ENSURE(!candidates_.empty(), "store needs at least one data center");
  GEORED_ENSURE(config_.groups >= 1, "store needs at least one object group");
  GEORED_ENSURE(config_.quorum.n >= 1, "replication factor must be >= 1");
  GEORED_ENSURE(config_.quorum.n <= candidates_.size(),
                "replication factor exceeds the candidate pool");
  GEORED_ENSURE(config_.quorum.r >= 1 && config_.quorum.r <= config_.quorum.n,
                "read quorum must be in [1, n]");
  GEORED_ENSURE(config_.quorum.w >= 1 && config_.quorum.w <= config_.quorum.n,
                "write quorum must be in [1, n]");

  config_.manager.replication_degree = config_.quorum.n;
  // A quorum system cannot let the degree drift away from n.
  config_.manager.dynamic_degree = false;

  core::FleetConfig fleet_config;
  fleet_config.groups = config_.groups;
  fleet_config.manager = config_.manager;
  // The quorum system owns the degree; no fleet-wide replica budget here.
  fleet_ = std::make_unique<core::FleetManager>(candidates_, fleet_config, seed_);
  for (const auto& candidate : candidates_) {
    storage_.emplace(candidate.node, StorageNode{});
  }
}

std::uint32_t ReplicatedKvStore::group_of(ObjectId id) const {
  return static_cast<std::uint32_t>(fleet_->group_of(id));
}

const place::Placement& ReplicatedKvStore::placement_of_group(std::uint32_t group) const {
  GEORED_ENSURE(group < fleet_->group_count(), "group index out of range");
  return fleet_->group(group).placement();
}

const core::ReplicationManager& ReplicatedKvStore::manager_of_group(
    std::uint32_t group) const {
  GEORED_ENSURE(group < fleet_->group_count(), "group index out of range");
  return fleet_->group(group);
}

const place::CandidateInfo& ReplicatedKvStore::candidate_info(topo::NodeId node) const {
  const auto it = std::find_if(candidates_.begin(), candidates_.end(),
                               [node](const place::CandidateInfo& c) { return c.node == node; });
  GEORED_CHECK(it != candidates_.end(), "placement node missing from candidates");
  return *it;
}

std::vector<topo::NodeId> ReplicatedKvStore::closest_replicas(  // lint: no-ensure (total)
    const place::Placement& placement, const Point& coords, std::size_t count) const {
  std::vector<std::pair<double, topo::NodeId>> ranked;
  ranked.reserve(placement.size());
  for (const auto node : placement) {
    ranked.emplace_back(coords.distance_squared_to(candidate_info(node).coords), node);
  }
  std::sort(ranked.begin(), ranked.end());
  std::vector<topo::NodeId> result;
  result.reserve(std::min(count, ranked.size()));
  for (std::size_t i = 0; i < std::min(count, ranked.size()); ++i) {
    result.push_back(ranked[i].second);
  }
  return result;
}

LamportClock& ReplicatedKvStore::clock_of(topo::NodeId client) {  // lint: no-ensure (total)
  const auto it = clocks_.find(client);
  if (it != clocks_.end()) return it->second;
  return clocks_.emplace(client, LamportClock(client)).first->second;
}

void ReplicatedKvStore::put(topo::NodeId client, const Point& client_coords, ObjectId id,
                            std::string data, std::function<void(const PutResult&)> done) {
  GEORED_ENSURE(static_cast<bool>(done), "put requires a completion callback");
  const std::uint32_t group = group_of(id);
  auto& manager = fleet_->group(group);
  const place::Placement& placement = manager.placement();

  // Hybrid logical clock: advance the writer's clock past both everything
  // it has observed and the current physical time (microseconds of virtual
  // time). Pure per-writer Lamport counters would let an older write win
  // last-writer-wins against a later write by a different client that never
  // observed it; folding in physical time gives LWW the real-time order
  // that sequential consistency needs (writer id still breaks true ties).
  auto& clock = clock_of(client);
  clock.observe({static_cast<std::uint64_t>(simulator_.now() * 1000.0), 0});
  VersionedValue value;
  value.version = clock.next();
  value.data = std::move(data);

  // The user population summary sees the write once, at the replica the
  // client would naturally be served by. The manager stages recorded
  // accesses and ingests them in batches at epoch/read boundaries, so the
  // per-put cost here is one append, not a summarizer update.
  const auto nearest = closest_replicas(placement, client_coords, 1);
  if (!nearest.empty()) {
    manager.record_access(nearest.front(), client_coords,
                          static_cast<double>(value.data.size()));
  }

  const double started_at = simulator_.now();
  auto acks = std::make_shared<std::size_t>(0);
  auto reported = std::make_shared<bool>(false);
  const std::size_t need = config_.quorum.w;
  const std::size_t payload = value.data.size() + config_.request_overhead_bytes;

  for (const auto replica : placement) {
    network_.send(client, replica, payload, sim::TrafficClass::kAccess,
                  [this, replica, id, value, client, started_at, acks, reported, need,
                   done] {
                    storage_.at(replica).apply_write(id, value);
                    // Ack back to the client.
                    network_.send(replica, client, config_.request_overhead_bytes,
                                  sim::TrafficClass::kAccess,
                                  [this, id, value, started_at, acks, reported, need,
                                   done] {
                                    if (++*acks != need || *reported) return;
                                    *reported = true;
                                    // Commit point for the staleness oracle.
                                    auto& committed = committed_[id];
                                    committed = std::max(committed, value.version);
                                    PutResult result;
                                    result.version = value.version;
                                    result.latency_ms = simulator_.now() - started_at;
                                    put_latency_.add(result.latency_ms);
                                    put_latency_histogram_.record(result.latency_ms);
                                    ++writes_;
                                    done(result);
                                  });
                  });
  }
}

void ReplicatedKvStore::get(topo::NodeId client, const Point& client_coords, ObjectId id,
                            std::function<void(const GetResult&)> done) {
  GEORED_ENSURE(static_cast<bool>(done), "get requires a completion callback");
  const std::uint32_t group = group_of(id);
  auto& manager = fleet_->group(group);
  const place::Placement& placement = manager.placement();
  const auto targets = closest_replicas(placement, client_coords, config_.quorum.r);
  GEORED_CHECK(!targets.empty(), "group has no replicas");

  manager.record_access(targets.front(), client_coords, 1.0);

  const double started_at = simulator_.now();
  // Freshness oracle: what was already committed when the read began.
  const auto committed_it = committed_.find(id);
  const Version committed_at_start =
      committed_it == committed_.end() ? Version::zero() : committed_it->second;

  auto replies = std::make_shared<std::vector<std::pair<topo::NodeId, Version>>>();
  auto best = std::make_shared<VersionedValue>();
  auto reported = std::make_shared<bool>(false);
  const std::size_t need = targets.size();

  for (const auto replica : targets) {
    network_.send(
        client, replica, config_.request_overhead_bytes, sim::TrafficClass::kAccess,
        [this, replica, id, client, started_at, committed_at_start, replies, best,
         reported, need, done] {
          const VersionedValue value = storage_.at(replica).read(id);
          const std::size_t payload = value.data.size() + config_.request_overhead_bytes;
          network_.send(replica, client, payload, sim::TrafficClass::kAccess,
                        [this, replica, id, client, value, started_at, committed_at_start,
                         replies, best, reported, need, done] {
                          if (value.version > best->version) *best = value;
                          replies->emplace_back(replica, value.version);
                          if (replies->size() != need || *reported) return;
                          *reported = true;
                          clock_of(client).observe(best->version);
                          GetResult result;
                          result.value = *best;
                          result.latency_ms = simulator_.now() - started_at;
                          result.stale = best->version < committed_at_start;
                          get_latency_.add(result.latency_ms);
                          get_latency_histogram_.record(result.latency_ms);
                          ++reads_;
                          if (result.stale) ++stale_reads_;
                          if (!result.value.exists()) ++not_found_reads_;
                          // Read repair: push the winning version back to
                          // every contacted replica that returned less.
                          if (config_.read_repair && best->exists()) {
                            const VersionedValue winner = *best;
                            for (const auto& [node, version] : *replies) {
                              if (version >= winner.version) continue;
                              ++read_repairs_;
                              const std::size_t repair_bytes =
                                  winner.data.size() + config_.request_overhead_bytes;
                              network_.send(client, node, repair_bytes,
                                            sim::TrafficClass::kAccess,
                                            [this, node, id, winner] {
                                              storage_.at(node).apply_write(id, winner);
                                            });
                            }
                          }
                          done(result);
                        });
        });
  }
}

void ReplicatedKvStore::migrate_group(std::uint32_t group,
                                      const place::Placement& old_placement,
                                      const place::Placement& new_placement) {
  const auto group_fn = [this](ObjectId id) { return group_of(id); };

  for (const auto node : new_placement) {
    if (std::find(old_placement.begin(), old_placement.end(), node) !=
        old_placement.end()) {
      continue;  // already holds the group
    }
    // Stream the group's data from the nearest surviving old replica.
    topo::NodeId source = old_placement.front();
    for (const auto old_node : old_placement) {
      if (network_.rtt_ms(old_node, node) < network_.rtt_ms(source, node)) {
        source = old_node;
      }
    }
    auto snapshot = storage_.at(source).export_group(group, group_fn);
    const std::size_t bytes = storage_.at(source).group_bytes(group, group_fn);
    network_.send(source, node, std::max<std::size_t>(bytes, 1),
                  sim::TrafficClass::kMigration,
                  [this, node, snapshot = std::move(snapshot)] {
                    auto& target = storage_.at(node);
                    for (const auto& [id, value] : snapshot) {
                      target.apply_write(id, value);
                    }
                  });
  }
  // Retired replicas drop the group once the new placement is in force.
  for (const auto node : old_placement) {
    if (std::find(new_placement.begin(), new_placement.end(), node) ==
        new_placement.end()) {
      storage_.at(node).drop_group(group, group_fn);
    }
  }
}

std::vector<core::EpochReport> ReplicatedKvStore::run_placement_epochs() {
  // Epochs are pure in-memory placement decisions (no network sends), so
  // running them all first — in parallel inside the fleet — and migrating
  // in group order afterwards schedules exactly the network events the
  // historical epoch-then-migrate-per-group loop produced.
  core::FleetEpochReport fleet_report = fleet_->run_epochs();
  for (std::uint32_t g = 0; g < fleet_report.group_reports.size(); ++g) {
    const core::EpochReport& report = fleet_report.group_reports[g];
    if (report.adopted_placement != report.old_placement) {
      migrate_group(g, report.old_placement, report.adopted_placement);
    }
  }
  return std::move(fleet_report.group_reports);
}

const StorageNode& ReplicatedKvStore::storage_at(topo::NodeId node) const {
  const auto it = storage_.find(node);
  GEORED_ENSURE(it != storage_.end(), "node is not a data center of this store");
  return it->second;
}

}  // namespace geored::store
