// Versioning for the replicated key-value store.
//
// Writes carry hybrid-logical-clock versions: a counter advanced past both
// every version the writer has observed (Lamport) and the writer's physical
// time at write start, with the writer id as a deterministic tie-break.
// Replicas keep the maximum version per key (last-writer-wins), which makes
// replica state convergent under any message ordering — the consistency
// model of the Dynamo-family systems the paper targets. The physical
// component gives LWW real-time ordering: without it, a writer with a
// low counter could lose against an *earlier* write by a busier client it
// never observed.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace geored::store {

using ObjectId = std::uint64_t;

struct Version {
  std::uint64_t logical = 0;  ///< Lamport counter
  std::uint32_t writer = 0;   ///< tie-break between concurrent writers

  auto operator<=>(const Version&) const = default;

  /// The null version: smaller than any real write.
  static Version zero() { return {}; }

  std::string to_string() const {
    return std::to_string(logical) + "@" + std::to_string(writer);
  }
};

/// A value with its version. Empty data + zero version = "not found".
struct VersionedValue {
  std::string data;
  Version version;

  bool exists() const { return version != Version::zero(); }
};

/// A writer-side Lamport clock.
class LamportClock {
 public:
  explicit LamportClock(std::uint32_t writer_id) : writer_(writer_id) {}

  /// Advances past `observed` (e.g. a version returned by a read).
  void observe(const Version& observed) {
    if (observed.logical > counter_) counter_ = observed.logical;
  }

  /// Mints a fresh version strictly greater than everything observed.
  Version next() { return {++counter_, writer_}; }

  std::uint32_t writer_id() const { return writer_; }

 private:
  std::uint64_t counter_ = 0;
  std::uint32_t writer_;
};

}  // namespace geored::store
