// Per-data-center storage state of the replicated key-value store: a
// last-writer-wins versioned map plus the bookkeeping needed to hand a
// whole object group to a new replica during migration.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "store/version.h"

namespace geored::store {

class StorageNode {
 public:
  /// Applies a write if it is newer than what is stored (LWW merge).
  /// Returns true when the write advanced the stored version.
  bool apply_write(ObjectId id, const VersionedValue& value);

  /// Current value (exists() == false when the key is unknown here).
  VersionedValue read(ObjectId id) const;

  /// All objects of one group, for migration transfers, sorted by object id.
  /// `group_of` maps an object to its group id. The sort matters: data_ is
  /// an unordered map, and a migration snapshot in hash-table order would
  /// make transfer event sequences (and anything serialized from them)
  /// depend on the allocator — the determinism lint flags exactly this
  /// pattern (unordered iteration feeding an output path).
  template <typename GroupFn>
  std::vector<std::pair<ObjectId, VersionedValue>> export_group(std::uint32_t group,
                                                                const GroupFn& group_of) const {
    std::vector<std::pair<ObjectId, VersionedValue>> out;
    for (const auto& [id, value] : data_) {  // lint: unordered-iter-ok (sorted below)
      if (group_of(id) == group) out.emplace_back(id, value);
    }
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return out;
  }

  /// Drops every object of one group (called when this node stops holding
  /// the group's replica).
  template <typename GroupFn>
  void drop_group(std::uint32_t group, const GroupFn& group_of) {
    for (auto it = data_.begin(); it != data_.end();) {
      it = group_of(it->first) == group ? data_.erase(it) : std::next(it);
    }
  }

  /// Total bytes of stored values in one group (migration transfer size).
  template <typename GroupFn>
  std::size_t group_bytes(std::uint32_t group, const GroupFn& group_of) const {
    std::size_t total = 0;
    // Order-insensitive reduction (a sum), so hash order cannot leak out.
    for (const auto& [id, value] : data_) {  // lint: unordered-iter-ok
      if (group_of(id) == group) total += value.data.size() + sizeof(Version) + sizeof(ObjectId);
    }
    return total;
  }

  std::size_t object_count() const { return data_.size(); }

 private:
  std::unordered_map<ObjectId, VersionedValue> data_;
};

}  // namespace geored::store
