#include "store/storage_node.h"

namespace geored::store {

bool StorageNode::apply_write(ObjectId id, const VersionedValue& value) {
  auto [it, inserted] = data_.try_emplace(id, value);
  if (inserted) return true;
  if (value.version > it->second.version) {
    it->second = value;
    return true;
  }
  return false;
}

VersionedValue StorageNode::read(ObjectId id) const {
  const auto it = data_.find(id);
  return it == data_.end() ? VersionedValue{} : it->second;
}

}  // namespace geored::store
