// ReplicatedKvStore: a Dynamo-style geo-replicated key-value store built on
// the paper's placement machinery — the kind of system ([4],[5],[6] in the
// paper) the replica placement technique is meant to serve, and the
// "quorum-based approaches" its future-work section points at.
//
//   * Objects are hashed into groups; each group is the paper's "virtual
//     object" (§II-A) with its own ReplicationManager: per-replica
//     micro-cluster summaries, macro-clustering epochs, migration gating.
//   * Writes go to all n replicas of the group and complete after w acks;
//     reads query the r closest replicas and return the newest version
//     (last-writer-wins with Lamport versions). r + w > n gives quorum
//     intersection; r + w <= n trades freshness for latency, and the store
//     counts the stale reads that result.
//   * Group migrations triggered by placement epochs copy the group's data
//     to the new replicas over the simulated network, charged as migration
//     traffic; reads racing a migration observe realistic transient
//     staleness.
//
// Everything runs on the discrete-event simulator; the store is
// single-threaded by construction like every geored component.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "common/stats.h"
#include "core/fleet_manager.h"
#include "serve/latency_histogram.h"
#include "core/replication_manager.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "store/storage_node.h"
#include "store/version.h"

namespace geored::store {

struct QuorumConfig {
  std::size_t n = 3;  ///< replicas per group (the placement degree k)
  std::size_t r = 1;  ///< replicas a read must hear from
  std::size_t w = 2;  ///< replicas a write must hear from
};

struct StoreConfig {
  QuorumConfig quorum;
  std::size_t groups = 16;            ///< object groups ("virtual objects")
  core::ManagerConfig manager;        ///< per-group placement parameters
                                      ///< (replication_degree is overridden by quorum.n)
  std::size_t request_overhead_bytes = 64;  ///< headers on every message

  /// Read repair (Dynamo's anti-entropy on the read path): when a quorum
  /// read observes replicas with divergent versions, the newest value is
  /// asynchronously written back to the stale replicas contacted. Converges
  /// weakly-consistent configurations without waiting for the next write.
  bool read_repair = false;
};

struct GetResult {
  VersionedValue value;
  double latency_ms = 0.0;
  /// True when a strictly newer version had already been committed when
  /// this read started (measured against the oracle commit log).
  bool stale = false;
};

struct PutResult {
  Version version;
  double latency_ms = 0.0;
};

class ReplicatedKvStore {
 public:
  ReplicatedKvStore(sim::Simulator& simulator, sim::Network& network,
                    std::vector<place::CandidateInfo> candidates, StoreConfig config,
                    std::uint64_t seed);

  /// Which group an object belongs to (stable hash).
  std::uint32_t group_of(ObjectId id) const;

  const place::Placement& placement_of_group(std::uint32_t group) const;
  const core::ReplicationManager& manager_of_group(std::uint32_t group) const;

  /// Asynchronous write: completes (calls `done`) after w replica acks.
  void put(topo::NodeId client, const Point& client_coords, ObjectId id, std::string data,
           std::function<void(const PutResult&)> done);

  /// Asynchronous read: completes after r replica replies with the newest
  /// version observed among them.
  void get(topo::NodeId client, const Point& client_coords, ObjectId id,
           std::function<void(const GetResult&)> done);

  /// Runs one placement epoch for every group (via the FleetManager, one
  /// parallel task per group) and performs the resulting data migrations
  /// over the network in group order. Returns one report per group.
  std::vector<core::EpochReport> run_placement_epochs();

  // --- Observability ----------------------------------------------------
  const OnlineStats& get_latency() const { return get_latency_; }
  const OnlineStats& put_latency() const { return put_latency_; }
  /// Full latency distributions for tail accounting: OnlineStats carries
  /// mean/variance, the histograms carry p50/p99/p999 (byte-stable quantile
  /// buckets, mergeable across stores — see serve/latency_histogram.h).
  const serve::LatencyHistogram& get_latency_histogram() const {
    return get_latency_histogram_;
  }
  const serve::LatencyHistogram& put_latency_histogram() const {
    return put_latency_histogram_;
  }
  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }
  std::uint64_t stale_reads() const { return stale_reads_; }
  std::uint64_t not_found_reads() const { return not_found_reads_; }
  std::uint64_t read_repairs() const { return read_repairs_; }
  /// Storage replica state of one data center (tests / tooling).
  const StorageNode& storage_at(topo::NodeId node) const;

 private:
  const place::CandidateInfo& candidate_info(topo::NodeId node) const;
  /// The `count` placement members closest to `coords` (predicted).
  std::vector<topo::NodeId> closest_replicas(const place::Placement& placement,
                                             const Point& coords, std::size_t count) const;
  LamportClock& clock_of(topo::NodeId client);
  void migrate_group(std::uint32_t group, const place::Placement& old_placement,
                     const place::Placement& new_placement);

  sim::Simulator& simulator_;
  sim::Network& network_;
  std::vector<place::CandidateInfo> candidates_;
  StoreConfig config_;
  std::uint64_t seed_;

  /// Per-group placement pipelines; the store's groups are the fleet's.
  std::unique_ptr<core::FleetManager> fleet_;
  std::map<topo::NodeId, StorageNode> storage_;
  std::map<topo::NodeId, LamportClock> clocks_;

  /// Oracle commit log for staleness accounting: newest version whose put
  /// has completed, per object.
  std::unordered_map<ObjectId, Version> committed_;

  OnlineStats get_latency_;
  OnlineStats put_latency_;
  serve::LatencyHistogram get_latency_histogram_;
  serve::LatencyHistogram put_latency_histogram_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t stale_reads_ = 0;
  std::uint64_t not_found_reads_ = 0;
  std::uint64_t read_repairs_ = 0;
};

}  // namespace geored::store
