#include "topology/analysis.h"

#include <sstream>
#include <vector>

#include "common/random.h"

namespace geored::topo {

MetricProperties analyze(const Topology& topology, std::size_t max_triangles,
                         std::uint64_t seed) {
  MetricProperties props;
  const std::size_t n = topology.size();
  std::vector<double> all, intra, inter;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double rtt = topology.rtt_ms(static_cast<NodeId>(i), static_cast<NodeId>(j));
      all.push_back(rtt);
      const auto ri = topology.node(static_cast<NodeId>(i)).region;
      const auto rj = topology.node(static_cast<NodeId>(j)).region;
      if (ri != 0xffffffffu && rj != 0xffffffffu) {
        (ri == rj ? intra : inter).push_back(rtt);
      }
    }
  }
  props.all_pairs_rtt = summarize(std::move(all));
  props.intra_region_rtt = summarize(std::move(intra));
  props.inter_region_rtt = summarize(std::move(inter));

  if (n >= 3 && max_triangles > 0) {
    Rng rng(seed);
    std::size_t violations = 0;
    for (std::size_t t = 0; t < max_triangles; ++t) {
      const auto i = static_cast<NodeId>(rng.below(n));
      auto j = static_cast<NodeId>(rng.below(n));
      auto k = static_cast<NodeId>(rng.below(n));
      if (i == j || j == k || i == k) continue;
      ++props.triangles_sampled;
      if (topology.rtt_ms(i, j) > topology.rtt_ms(i, k) + topology.rtt_ms(k, j)) {
        ++violations;
      }
    }
    if (props.triangles_sampled > 0) {
      props.triangle_violation_rate =
          static_cast<double>(violations) / static_cast<double>(props.triangles_sampled);
    }
  }
  return props;
}

std::string MetricProperties::to_string() const {
  std::ostringstream os;
  os << "all-pairs RTT: " << all_pairs_rtt.to_string() << '\n';
  if (intra_region_rtt.count > 0) {
    os << "intra-region RTT: " << intra_region_rtt.to_string() << '\n'
       << "inter-region RTT: " << inter_region_rtt.to_string() << '\n';
  }
  os << "triangle-inequality violation rate: " << triangle_violation_rate << " over "
     << triangles_sampled << " triangles";
  return os.str();
}

}  // namespace geored::topo
