// Synthetic PlanetLab-like wide-area topology generator.
//
// The paper's evaluation used an RTT matrix measured between 226 PlanetLab
// nodes; that dataset is no longer distributed, so this module generates a
// matrix with the same structural properties that drive placement quality:
//
//   * nodes concentrated in a handful of geographic regions (PlanetLab was
//     dominated by North-American and European academic sites, with smaller
//     Asian / Oceanian / South-American contingents);
//   * intra-region RTTs of roughly 5-60 ms, trans-continental RTTs of
//     100-350 ms, driven by great-circle distance times a path-inflation
//     factor (internet routes are not geodesics);
//   * per-node access-link delay (a few ms each way);
//   * a few percent of pairs with strongly inflated routes, producing the
//     triangle-inequality violations real latency datasets exhibit.
//
// `topology/analysis.h` quantifies these properties so tests can pin them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topology/geo.h"
#include "topology/topology.h"

namespace geored::topo {

/// One population centre nodes are scattered around.
struct RegionSpec {
  std::string name;
  GeoLocation center;
  double spread_km = 300.0;  ///< std-dev of node scatter around the centre
  double weight = 1.0;       ///< share of nodes drawn from this region
};

/// The default region mix, approximating PlanetLab's 2009-2011 footprint.
std::vector<RegionSpec> default_planetlab_regions();

struct PlanetLabModelConfig {
  std::size_t node_count = 226;
  std::vector<RegionSpec> regions = default_planetlab_regions();

  /// Path inflation: measured internet paths are typically 1.3-2.5x longer
  /// than the geodesic. Inflation correlates with the endpoints (access
  /// ISPs, regional peering), so it is modelled as the product of per-node
  /// factors: each node draws a factor uniform in [sqrt(min), sqrt(max)],
  /// and a pair's inflation is the product of its endpoints' factors — the
  /// product then spans [min, max].
  double path_inflation_min = 1.3;
  double path_inflation_max = 2.2;

  /// One-way access-link latency per node, uniform in [min, max] ms.
  double access_ms_min = 0.5;
  double access_ms_max = 6.0;

  /// Fraction of pairs whose route is pathologically inflated (TIV source)
  /// and the extra multiplier applied to them.
  double tiv_pair_fraction = 0.04;
  double tiv_extra_inflation = 2.5;

  /// Multiplicative noise applied to every pair: rtt *= exp(N(0, sigma)).
  double lognormal_jitter_sigma = 0.05;

  /// Floor for any pair's RTT, ms.
  double min_rtt_ms = 0.2;
};

/// Generates a topology; the result is a pure function of (config, seed).
Topology generate_planetlab_like(const PlanetLabModelConfig& config, std::uint64_t seed);

}  // namespace geored::topo
