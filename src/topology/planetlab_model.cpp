#include "topology/planetlab_model.h"

#include <algorithm>
#include <cmath>

#include "common/ensure.h"
#include "common/random.h"

namespace geored::topo {

std::vector<RegionSpec> default_planetlab_regions() {
  // Centres are major PlanetLab hosting areas; weights approximate the site
  // distribution of the 2009-2011 deployment (NA + EU heavy, smaller Asian,
  // Oceanian and South-American contingents).
  return {
      {"na-east", {40.7, -74.0}, 500.0, 0.21},
      {"na-central", {41.9, -87.6}, 450.0, 0.08},
      {"na-west", {37.4, -122.1}, 450.0, 0.13},
      {"eu-west", {51.5, -0.1}, 550.0, 0.17},
      {"eu-central", {48.1, 11.6}, 500.0, 0.12},
      {"eu-south", {41.9, 12.5}, 400.0, 0.06},
      {"east-asia", {35.7, 139.7}, 600.0, 0.10},
      {"china", {39.9, 116.4}, 500.0, 0.05},
      {"oceania", {-33.9, 151.2}, 400.0, 0.04},
      {"south-america", {-23.5, -46.6}, 500.0, 0.04},
  };
}

namespace {

/// Scatters a node around a region centre with a Gaussian spread expressed in
/// kilometres, converted to degrees at the centre's latitude.
GeoLocation scatter(const GeoLocation& center, double spread_km, Rng& rng) {
  constexpr double kKmPerDegLat = 111.0;
  const double lat_sigma = spread_km / kKmPerDegLat;
  const double cos_lat = std::max(0.2, std::cos(center.lat_deg * 3.14159265358979 / 180.0));
  const double lon_sigma = spread_km / (kKmPerDegLat * cos_lat);
  GeoLocation loc;
  loc.lat_deg = std::clamp(center.lat_deg + rng.normal(0.0, lat_sigma), -85.0, 85.0);
  loc.lon_deg = center.lon_deg + rng.normal(0.0, lon_sigma);
  if (loc.lon_deg > 180.0) loc.lon_deg -= 360.0;
  if (loc.lon_deg < -180.0) loc.lon_deg += 360.0;
  return loc;
}

}  // namespace

Topology generate_planetlab_like(const PlanetLabModelConfig& config, std::uint64_t seed) {
  GEORED_ENSURE(config.node_count >= 2, "topology needs at least two nodes");
  GEORED_ENSURE(!config.regions.empty(), "topology needs at least one region");
  GEORED_ENSURE(config.path_inflation_min >= 1.0 &&
                    config.path_inflation_max >= config.path_inflation_min,
                "path inflation range must be >= 1 and ordered");
  GEORED_ENSURE(config.tiv_pair_fraction >= 0.0 && config.tiv_pair_fraction <= 1.0,
                "tiv_pair_fraction must be a probability");

  Rng rng(seed);
  std::vector<double> weights;
  weights.reserve(config.regions.size());
  for (const auto& region : config.regions) {
    GEORED_ENSURE(region.weight >= 0.0, "region weights must be non-negative");
    weights.push_back(region.weight);
  }

  std::vector<NodeInfo> nodes;
  nodes.reserve(config.node_count);
  std::vector<std::string> region_names;
  region_names.reserve(config.regions.size());
  for (const auto& region : config.regions) region_names.push_back(region.name);

  std::vector<double> node_inflation(config.node_count);
  const double factor_lo = std::sqrt(config.path_inflation_min);
  const double factor_hi = std::sqrt(config.path_inflation_max);
  for (std::size_t i = 0; i < config.node_count; ++i) {
    const std::size_t r = rng.weighted_index(weights);
    NodeInfo node;
    node.region = static_cast<std::uint32_t>(r);
    node.location = scatter(config.regions[r].center, config.regions[r].spread_km, rng);
    node.access_ms = rng.uniform(config.access_ms_min, config.access_ms_max);
    nodes.push_back(node);
    node_inflation[i] = rng.uniform(factor_lo, factor_hi);
  }

  SymMatrix rtt(config.node_count);
  for (std::size_t i = 0; i < config.node_count; ++i) {
    for (std::size_t j = i + 1; j < config.node_count; ++j) {
      const double floor_ms = geodesic_rtt_floor_ms(nodes[i].location, nodes[j].location);
      double inflation = node_inflation[i] * node_inflation[j];
      if (rng.bernoulli(config.tiv_pair_fraction)) {
        inflation *= config.tiv_extra_inflation;
      }
      const double access = 2.0 * (nodes[i].access_ms + nodes[j].access_ms);
      double value = floor_ms * inflation + access;
      value *= std::exp(rng.normal(0.0, config.lognormal_jitter_sigma));
      rtt.set(i, j, std::max(config.min_rtt_ms, value));
    }
  }

  return Topology(std::move(nodes), std::move(rtt), std::move(region_names));
}

}  // namespace geored::topo
