// Geographic primitives for the synthetic WAN model.
#pragma once

namespace geored::topo {

/// A point on the Earth's surface, degrees.
struct GeoLocation {
  double lat_deg = 0.0;
  double lon_deg = 0.0;
};

/// Great-circle distance in kilometres (haversine, spherical Earth).
double haversine_km(const GeoLocation& a, const GeoLocation& b);

/// Minimum possible round-trip time in milliseconds over a geodesic fibre
/// path between two locations: light in fibre covers ~100 km per millisecond
/// of RTT (speed ~2/3 c, doubled for the round trip).
double geodesic_rtt_floor_ms(const GeoLocation& a, const GeoLocation& b);

}  // namespace geored::topo
