#include "topology/geo.h"

#include <cmath>

namespace geored::topo {

namespace {
constexpr double kPi = 3.14159265358979323846;
constexpr double kEarthRadiusKm = 6371.0;
/// RTT accrues at ~1 ms per 100 km of geodesic distance (fibre at 2c/3,
/// doubled for the round trip).
constexpr double kRttMsPerKm = 1.0 / 100.0;

double deg2rad(double deg) { return deg * kPi / 180.0; }
}  // namespace

double haversine_km(const GeoLocation& a, const GeoLocation& b) {
  const double lat1 = deg2rad(a.lat_deg);
  const double lat2 = deg2rad(b.lat_deg);
  const double dlat = lat2 - lat1;
  const double dlon = deg2rad(b.lon_deg - a.lon_deg);
  const double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) * std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

double geodesic_rtt_floor_ms(const GeoLocation& a, const GeoLocation& b) {
  return haversine_km(a, b) * kRttMsPerKm;
}

}  // namespace geored::topo
