// The Topology is the ground-truth latency substrate for all experiments:
// a set of nodes with (synthetic) geographic positions and a full pairwise
// RTT matrix. The simulator samples all message delays from it; network
// coordinate systems try to embed it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/sym_matrix.h"
#include "topology/geo.h"

namespace geored::topo {

using NodeId = std::uint32_t;

struct NodeInfo {
  GeoLocation location;
  /// Index into Topology::region_names (0xffffffff when unknown, e.g. for
  /// matrices loaded from disk without geography).
  std::uint32_t region = 0xffffffffu;
  /// Per-node access-link latency contribution (one way, ms).
  double access_ms = 0.0;
};

class Topology {
 public:
  Topology() = default;
  Topology(std::vector<NodeInfo> nodes, SymMatrix rtt_ms, std::vector<std::string> region_names);

  std::size_t size() const { return nodes_.size(); }

  /// Ground-truth round-trip time between two nodes, milliseconds.
  double rtt_ms(NodeId a, NodeId b) const { return rtt_.at(a, b); }

  const NodeInfo& node(NodeId id) const { return nodes_.at(id); }
  const std::vector<NodeInfo>& nodes() const { return nodes_; }
  const SymMatrix& rtt_matrix() const { return rtt_; }
  const std::vector<std::string>& region_names() const { return region_names_; }

  /// Writes the topology as a plain-text file: node count, node lines
  /// (lat lon region access_ms), then the upper-triangle RTTs.
  void save(std::ostream& os) const;

  /// Parses the format written by save(). Throws std::invalid_argument on a
  /// malformed stream.
  static Topology load(std::istream& is);

  /// Builds a topology from a bare RTT matrix (no geography), e.g. a real
  /// PlanetLab measurement file: first token n, then n*n row-major entries in
  /// milliseconds (diagonal ignored; asymmetric entries are averaged).
  static Topology from_rtt_matrix_stream(std::istream& is);

  /// New topology containing only `nodes` (reindexed in the given order,
  /// duplicates rejected); region names are preserved. Useful for running
  /// experiments on sub-populations of a measured matrix.
  Topology subset(const std::vector<NodeId>& nodes) const;

 private:
  std::vector<NodeInfo> nodes_;
  SymMatrix rtt_;
  std::vector<std::string> region_names_;
};

}  // namespace geored::topo
