// Metric-property analysis of a latency matrix.
//
// Used by tests to pin down that the synthetic topology exhibits the
// structural properties of measured wide-area latency datasets, and by the
// documentation/benches to report what the substrate looks like.
#pragma once

#include <cstddef>
#include <string>

#include "common/stats.h"
#include "topology/topology.h"

namespace geored::topo {

struct MetricProperties {
  Summary all_pairs_rtt;
  Summary intra_region_rtt;   ///< empty (count==0) if no region info
  Summary inter_region_rtt;   ///< empty (count==0) if no region info
  /// Fraction of sampled triangles (i,j,k) with rtt(i,j) > rtt(i,k)+rtt(k,j).
  double triangle_violation_rate = 0.0;
  std::size_t triangles_sampled = 0;

  std::string to_string() const;
};

/// Analyzes up to `max_triangles` randomly sampled triangles (deterministic
/// in `seed`) plus all pairwise RTTs.
MetricProperties analyze(const Topology& topology, std::size_t max_triangles = 200000,
                         std::uint64_t seed = 1);

}  // namespace geored::topo
