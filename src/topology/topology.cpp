#include "topology/topology.h"

#include <istream>
#include <ostream>

#include "common/ensure.h"

namespace geored::topo {

Topology::Topology(std::vector<NodeInfo> nodes, SymMatrix rtt_ms,
                   std::vector<std::string> region_names)
    : nodes_(std::move(nodes)), rtt_(std::move(rtt_ms)), region_names_(std::move(region_names)) {
  GEORED_ENSURE(nodes_.size() == rtt_.size(),
                "node list and RTT matrix must have the same size");
}

void Topology::save(std::ostream& os) const {
  os << nodes_.size() << ' ' << region_names_.size() << '\n';
  for (const auto& name : region_names_) os << name << '\n';
  for (const auto& node : nodes_) {
    os << node.location.lat_deg << ' ' << node.location.lon_deg << ' ' << node.region << ' '
       << node.access_ms << '\n';
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes_.size(); ++j) {
      os << rtt_.at(i, j) << (j + 1 == nodes_.size() ? '\n' : ' ');
    }
  }
}

Topology Topology::load(std::istream& is) {
  std::size_t n = 0, region_count = 0;
  GEORED_ENSURE(static_cast<bool>(is >> n >> region_count), "malformed topology header");
  std::vector<std::string> region_names(region_count);
  for (auto& name : region_names) {
    GEORED_ENSURE(static_cast<bool>(is >> name), "malformed region name");
  }
  std::vector<NodeInfo> nodes(n);
  for (auto& node : nodes) {
    GEORED_ENSURE(static_cast<bool>(is >> node.location.lat_deg >> node.location.lon_deg >>
                                    node.region >> node.access_ms),
                  "malformed node line");
  }
  SymMatrix rtt(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double value = 0.0;
      GEORED_ENSURE(static_cast<bool>(is >> value), "malformed RTT entry");
      GEORED_ENSURE(value >= 0.0, "RTT entries must be non-negative");
      rtt.set(i, j, value);
    }
  }
  return Topology(std::move(nodes), std::move(rtt), std::move(region_names));
}

Topology Topology::subset(const std::vector<NodeId>& node_ids) const {
  GEORED_ENSURE(node_ids.size() >= 2, "a topology subset needs at least two nodes");
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<NodeInfo> selected;
  selected.reserve(node_ids.size());
  for (const auto id : node_ids) {
    GEORED_ENSURE(id < nodes_.size(), "subset references an unknown node");
    GEORED_ENSURE(!seen[id], "subset contains a duplicate node");
    seen[id] = true;
    selected.push_back(nodes_[id]);
  }
  SymMatrix rtt(node_ids.size());
  for (std::size_t i = 0; i < node_ids.size(); ++i) {
    for (std::size_t j = i + 1; j < node_ids.size(); ++j) {
      rtt.set(i, j, rtt_.at(node_ids[i], node_ids[j]));
    }
  }
  return Topology(std::move(selected), std::move(rtt), region_names_);
}

Topology Topology::from_rtt_matrix_stream(std::istream& is) {
  std::size_t n = 0;
  GEORED_ENSURE(static_cast<bool>(is >> n), "malformed matrix header");
  GEORED_ENSURE(n >= 2, "RTT matrix needs at least two nodes");
  std::vector<std::vector<double>> full(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      GEORED_ENSURE(static_cast<bool>(is >> full[i][j]), "malformed matrix entry");
    }
  }
  SymMatrix rtt(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double avg = 0.5 * (full[i][j] + full[j][i]);
      GEORED_ENSURE(avg >= 0.0, "RTT entries must be non-negative");
      rtt.set(i, j, avg);
    }
  }
  return Topology(std::vector<NodeInfo>(n), std::move(rtt), {});
}

}  // namespace geored::topo
