// Declarative scenario files: schema and parser.
//
// A scenario is one JSON document describing a complete dynamic experiment:
// the world (topology, coordinates, data centers), the base demand
// (workload), the placement machinery (manager / fleet / collector), and a
// time-ordered list of events — diurnal envelopes, flash crowds, data-center
// outages, client-population drift, and group-weight churn. The parser is
// hand-rolled (no dependencies), validates the schema strictly — unknown
// keys, wrong types, bad references, and malformed schedules are typed
// errors with a JSON path — and the parsed form is a plain struct the
// runner (scenario/runner.h) turns into a seeded event schedule.
//
// Determinism contract: a ScenarioConfig is a pure function of the file
// bytes, and every random choice downstream derives from the seeds recorded
// here, so (file, seed) fully determines a run.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/replication_manager.h"
#include "net/rpc_config.h"
#include "topology/topology.h"

namespace geored::scenario {

/// Parse/validation failure, classified so tests and tools can react to the
/// *kind* of mistake, with the JSON path of the offending element.
class ScenarioError : public std::invalid_argument {
 public:
  enum class Kind {
    kSyntax,        ///< the document is not well-formed JSON
    kUnknownKey,    ///< an object key the schema does not define
    kBadValue,      ///< wrong type or out-of-range value
    kBadReference,  ///< names an entity that does not exist (group, region)
    kBadSchedule,   ///< events out of order or overlapping
  };

  ScenarioError(Kind kind, std::string path, const std::string& message);

  Kind kind() const { return kind_; }
  /// JSON path of the offending element, e.g. "events[2].factor".
  const std::string& path() const { return path_; }

 private:
  Kind kind_;
  std::string path_;
};

/// Synthetic world: a PlanetLab-like topology whose first `dcs` nodes are
/// the candidate data centers and whose remaining nodes are the client
/// universe (activated/retired by population events).
struct TopologySpec {
  std::size_t nodes = 100;
  std::size_t dcs = 12;
  std::uint64_t seed = 99;
};

/// Network-coordinate embedding used for summary space and (with routing
/// "coords") replica selection.
struct CoordsSpec {
  std::string system = "rnp";  ///< "rnp" | "vivaldi"
  std::size_t rounds = 256;    ///< gossip rounds
  std::uint64_t seed = 7;
};

/// Base (pre-modulation) per-client demand.
struct WorkloadSpec {
  std::string kind = "uniform";  ///< "uniform" | "zipf"
  double mean_rate = 0.0005;     ///< uniform: per-client accesses/ms
  double sigma = 0.0;            ///< uniform: lognormal rate spread
  double total_rate = 0.05;      ///< zipf: fleet-wide accesses/ms
  double exponent = 0.9;         ///< zipf: popularity exponent
  std::uint64_t seed = 3;
};

/// Fleet shape; groups > 1 runs a FleetManager, 1 a bare manager pipeline.
struct FleetSpec {
  std::size_t groups = 1;
  std::size_t replica_budget = 0;  ///< 0 = no budget, degrees stay per-group
  std::size_t min_degree = 1;
  std::size_t max_degree = 7;
  /// Initial per-group traffic weights (empty = all 1). Sized to `groups`.
  std::vector<double> weights;
};

/// Serving data plane in front of the placement machinery: when present,
/// accesses route through a serve::RequestRouter (nearest up replica,
/// bounded per-replica queues, admission control) and every epoch's jsonl
/// row gains a "serve" record with p50/p99/p999 client-observed latency.
/// Requires routing == "coords" — replica selection runs in coordinate
/// space through the SoA nearest-of kernels.
struct ServeSpec {
  bool enabled = false;          ///< set when the scenario has a "serve" block
  double service_ms = 0.05;      ///< per-request virtual service time
  std::size_t queue_cap = 64;    ///< max resident requests per replica
  std::string policy = "spill";  ///< "spill" | "reject" on a full queue
};

/// One scheduled event. Windowed kinds (flash_crowd, outage) carry
/// [start_ms, end_ms); instant kinds (population, group_weight) fire at
/// at_ms (an epoch boundary rounds them: in force for every epoch whose
/// window starts at or after at_ms); diurnal is a standing envelope from
/// t=0. Fields not used by a kind stay at their defaults.
struct Event {
  enum class Kind { kDiurnal, kFlashCrowd, kOutage, kPopulation, kGroupWeight };

  Kind kind = Kind::kFlashCrowd;

  /// Region pattern the event targets: "*" (all), an exact region name, or
  /// a prefix pattern like "eu-*". Diurnal/flash/population match client
  /// regions; outage matches data-center regions.
  std::string region = "*";
  /// Outage alternative: one specific data center instead of a region.
  std::optional<topo::NodeId> node;

  double start_ms = 0.0;  ///< flash_crowd / outage window start
  double end_ms = 0.0;    ///< flash_crowd / outage window end (exclusive)
  double at_ms = 0.0;     ///< population / group_weight effective time

  double factor = 1.0;  ///< flash_crowd rate multiplier (> 0)

  double period_ms = 86'400'000.0;  ///< diurnal period
  double phase = 0.0;               ///< diurnal peak position in [0,1)
  double floor = 0.1;               ///< diurnal envelope floor in [0,1]

  std::size_t add = 0;     ///< population: clients to activate
  std::size_t retire = 0;  ///< population: clients to deactivate

  std::size_t group = 0;  ///< group_weight target group
  double weight = 1.0;    ///< group_weight new weight (> 0)

  /// Time an event becomes effective (window start for windowed kinds,
  /// at_ms for instants, 0 for diurnal) — the key the schedule-order
  /// validation sorts by.
  double effective_ms() const;
};

/// A whole parsed scenario.
struct ScenarioConfig {
  std::string name;
  std::string description;
  std::uint64_t seed = 1;  ///< root of every runtime random stream

  std::size_t epochs = 8;
  double epoch_ms = 30'000.0;

  TopologySpec topology;
  CoordsSpec coords;
  WorkloadSpec workload;
  core::ManagerConfig manager;
  FleetSpec fleet;

  std::string collector = "direct";  ///< "direct" | "rpc"
  net::RpcCollectorConfig rpc;       ///< consulted when collector == "rpc"

  std::string routing = "coords";  ///< "coords" | "true_rtt"

  ServeSpec serve;  ///< serving data plane; disabled unless a "serve" block exists

  /// Fraction of the client universe active at t=0 (first ceil(fraction*n)
  /// clients in node-id order); population events drift it from there.
  double initial_active_fraction = 1.0;

  std::vector<Event> events;
};

/// Parses and validates a scenario document. Throws ScenarioError.
ScenarioConfig parse_scenario(const std::string& text);

/// parse_scenario over the contents of `path`; throws std::runtime_error
/// when the file cannot be read.
ScenarioConfig load_scenario_file(const std::string& path);

}  // namespace geored::scenario
