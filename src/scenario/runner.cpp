#include "scenario/runner.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <set>

#include "common/ensure.h"
#include "common/random.h"
#include "core/fleet_manager.h"
#include "net/clock.h"
#include "netcoord/embedding.h"
#include "scenario/table.h"
#include "serve/request_router.h"
#include "sim/simulator.h"
#include "topology/planetlab_model.h"
#include "workload/modulated.h"
#include "workload/workload.h"

namespace geored::scenario {

namespace {

bool region_matches(const std::string& name, const std::string& pattern) {
  if (pattern == "*") return true;
  if (!pattern.empty() && pattern.back() == '*') {
    return name.compare(0, pattern.size() - 1, pattern, 0, pattern.size() - 1) == 0;
  }
  return name == pattern;
}

/// Per-client membership mask for a region pattern over the client universe
/// (topology nodes [dcs, size)); throws kBadReference when nothing matches.
std::vector<bool> client_region_mask(const topo::Topology& topology, std::size_t dcs,
                                     const std::string& pattern, const std::string& path) {
  const std::size_t clients = topology.size() - dcs;
  std::vector<bool> mask(clients, false);
  bool any = false;
  for (std::size_t c = 0; c < clients; ++c) {
    const auto region = topology.node(static_cast<topo::NodeId>(dcs + c)).region;
    if (region < topology.region_names().size() &&
        region_matches(topology.region_names()[region], pattern)) {
      mask[c] = true;
      any = true;
    }
  }
  if (!any) {
    throw ScenarioError(ScenarioError::Kind::kBadReference, path,
                        "region pattern \"" + pattern +
                            "\" matches no client in the generated topology");
  }
  return mask;
}

/// One compiled outage window for one data center.
struct OutageWindow {
  topo::NodeId node = 0;
  double start_ms = 0.0;
  double end_ms = 0.0;
};

struct PopulationChange {
  double at_ms = 0.0;
  std::vector<bool> mask;  ///< clients the change draws from
  std::size_t add = 0;
  std::size_t retire = 0;
};

struct WeightChange {
  double at_ms = 0.0;
  std::size_t group = 0;
  double weight = 1.0;
};

void append_json_string(std::string& out, const std::string& text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  out += '"';
}

std::string render_jsonl_line(const EpochRow& row) {
  std::string out = "{\"epoch\":" + std::to_string(row.epoch);
  out += ",\"t_ms\":" + format_double(row.t_ms);
  out += ",\"active_clients\":" + std::to_string(row.active_clients);
  out += ",\"accesses\":" + std::to_string(row.accesses);
  out += ",\"lost_accesses\":" + std::to_string(row.lost_accesses);
  out += ",\"mean_delay_ms\":" + format_double(row.mean_delay_ms);
  out += ",\"objective_ms\":" + format_double(row.objective_ms);
  out += ",\"groups_migrated\":" + std::to_string(row.groups_migrated);
  out += ",\"replicas_moved\":" + std::to_string(row.replicas_moved);
  out += ",\"stale_sources\":" + std::to_string(row.stale_sources);
  out += ",\"lost_sources\":" + std::to_string(row.lost_sources);
  out += ",\"total_degree\":" + std::to_string(row.total_degree);
  out += ",\"degrees\":[";
  for (std::size_t g = 0; g < row.degrees.size(); ++g) {
    if (g > 0) out += ',';
    out += std::to_string(row.degrees[g]);
  }
  out += "],\"excluded\":[";
  for (std::size_t i = 0; i < row.excluded.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(row.excluded[i]);
  }
  out += "],\"region_delay_ms\":{";
  for (std::size_t i = 0; i < row.region_delay_ms.size(); ++i) {
    if (i > 0) out += ',';
    append_json_string(out, row.region_delay_ms[i].first);
    out += ':';
    out += format_double(row.region_delay_ms[i].second);
  }
  out += "},\"region_accesses\":{";
  for (std::size_t i = 0; i < row.region_accesses.size(); ++i) {
    if (i > 0) out += ',';
    append_json_string(out, row.region_accesses[i].first);
    out += ':';
    out += std::to_string(row.region_accesses[i].second);
  }
  out += '}';
  // The serve record exists only for scenarios with a "serve" block, so
  // serve-less transcripts (and their goldens) are byte-for-byte unchanged.
  if (row.serve.enabled) {
    out += ",\"serve\":{\"requests\":" + std::to_string(row.serve.requests);
    out += ",\"admitted\":" + std::to_string(row.serve.admitted);
    out += ",\"rejected\":" + std::to_string(row.serve.rejected);
    out += ",\"spilled\":" + std::to_string(row.serve.spilled);
    out += ",\"p50_ms\":" + format_double(row.serve.p50_ms);
    out += ",\"p99_ms\":" + format_double(row.serve.p99_ms);
    out += ",\"p999_ms\":" + format_double(row.serve.p999_ms);
    out += ",\"mean_ms\":" + format_double(row.serve.mean_ms);
    out += '}';
  }
  out += '}';
  return out;
}

/// The whole mutable run: compiled schedules, the fleet, per-epoch
/// accumulators. Lives for one run_scenario call.
class Engine {
 public:
  explicit Engine(const ScenarioConfig& config)
      : config_(config), root_rng_(config.seed) {
    build_world();
    compile_events();
    build_workload();
    build_fleet();
    build_routers();
    region_accesses_.assign(topology_.region_names().size(), 0);
    region_delay_sum_.assign(topology_.region_names().size(), 0.0);
  }

  ScenarioResult run() {
    begin_epoch(0);
    simulator_.run();
    ScenarioResult result;
    result.epochs = std::move(rows_);
    result.jsonl_lines.reserve(result.epochs.size());
    for (const auto& row : result.epochs) {
      result.jsonl_lines.push_back(render_jsonl_line(row));
    }
    return result;
  }

 private:
  void build_world() {
    topo::PlanetLabModelConfig topo_config;
    topo_config.node_count = config_.topology.nodes;
    topology_ = topo::generate_planetlab_like(topo_config, config_.topology.seed);

    coord::GossipConfig gossip;
    gossip.rounds = config_.coords.rounds;
    coords_ = config_.coords.system == "vivaldi"
                  ? coord::run_vivaldi(topology_, coord::VivaldiConfig{}, gossip,
                                       config_.coords.seed)
                  : coord::run_rnp(topology_, coord::RnpConfig{}, gossip, config_.coords.seed);

    dcs_ = config_.topology.dcs;
    for (std::size_t i = 0; i < dcs_; ++i) {
      candidates_.push_back({static_cast<topo::NodeId>(i), coords_[i].position,
                             std::numeric_limits<double>::infinity()});
    }
    client_count_ = topology_.size() - dcs_;

    // The initial active population: the first ceil(fraction * n) clients
    // in node-id order (deterministic; population events drift it later).
    const auto initial = static_cast<std::size_t>(
        std::ceil(config_.initial_active_fraction * static_cast<double>(client_count_)));
    active_.assign(client_count_, false);
    for (std::size_t c = 0; c < std::min(initial, client_count_); ++c) active_[c] = true;
  }

  void compile_events() {
    for (std::size_t i = 0; i < config_.events.size(); ++i) {
      const Event& event = config_.events[i];
      const std::string path = "events[" + std::to_string(i) + "]";
      switch (event.kind) {
        case Event::Kind::kDiurnal: {
          wl::RateProfile profile;
          profile.kind = wl::RateProfile::Kind::kDiurnal;
          profile.affected = client_region_mask(topology_, dcs_, event.region, path);
          profile.period_ms = event.period_ms;
          profile.phase = event.phase;
          profile.floor_fraction = event.floor;
          profiles_.push_back(std::move(profile));
          break;
        }
        case Event::Kind::kFlashCrowd: {
          wl::RateProfile profile;
          profile.kind = wl::RateProfile::Kind::kStep;
          profile.affected = client_region_mask(topology_, dcs_, event.region, path);
          profile.start_ms = event.start_ms;
          profile.end_ms = event.end_ms;
          profile.factor = event.factor;
          profiles_.push_back(std::move(profile));
          break;
        }
        case Event::Kind::kOutage: {
          if (event.node.has_value()) {
            outages_.push_back({*event.node, event.start_ms, event.end_ms});
          } else {
            bool any = false;
            for (std::size_t i_dc = 0; i_dc < dcs_; ++i_dc) {
              const auto region = topology_.node(static_cast<topo::NodeId>(i_dc)).region;
              if (region < topology_.region_names().size() &&
                  region_matches(topology_.region_names()[region], event.region)) {
                outages_.push_back(
                    {static_cast<topo::NodeId>(i_dc), event.start_ms, event.end_ms});
                any = true;
              }
            }
            if (!any) {
              throw ScenarioError(ScenarioError::Kind::kBadReference, path + ".region",
                                  "region pattern \"" + event.region +
                                      "\" matches no data center");
            }
          }
          break;
        }
        case Event::Kind::kPopulation:
          population_.push_back({event.at_ms,
                                 client_region_mask(topology_, dcs_, event.region, path),
                                 event.add, event.retire});
          break;
        case Event::Kind::kGroupWeight:
          weight_changes_.push_back({event.at_ms, event.group, event.weight});
          break;
      }
    }
  }

  void build_workload() {
    std::unique_ptr<wl::Workload> base;
    if (config_.workload.kind == "zipf") {
      base = wl::make_zipf_workload(client_count_, config_.workload.total_rate,
                                    config_.workload.exponent, config_.workload.seed);
    } else {
      base = wl::make_uniform_workload(client_count_, config_.workload.mean_rate,
                                       config_.workload.sigma, config_.workload.seed);
    }
    workload_ =
        std::make_unique<wl::ModulatedWorkload>(std::move(base), std::move(profiles_));
  }

  void build_fleet() {
    core::FleetConfig fleet;
    fleet.groups = config_.fleet.groups;
    fleet.manager = config_.manager;
    fleet.replica_budget = config_.fleet.replica_budget;
    fleet.min_degree = config_.fleet.min_degree;
    fleet.max_degree = config_.fleet.max_degree;
    if (config_.collector == "rpc") {
      // Summaries ship over real localhost sockets with the scenario's
      // fault schedule; retry backoff runs on a virtual clock so injected
      // faults cost no wall time (and no wall-clock nondeterminism).
      const net::RpcCollectorConfig rpc = config_.rpc;
      auto clock = std::make_shared<net::VirtualClock>();
      fleet.pipeline_factory = [rpc, clock](const core::ManagerConfig& manager,
                                            std::size_t /*group*/) {
        core::EpochPipeline pipeline = core::standard_pipeline(manager);
        core::CollectorConfig collector;
        collector.rpc = rpc;
        collector.rpc_clock = clock;
        pipeline.collector = core::make_collector("rpc", collector);
        return pipeline;
      };
    }
    fleet_ = std::make_unique<core::FleetManager>(candidates_, fleet, config_.seed);
    group_weights_.assign(config_.fleet.groups, 1.0);
    if (!config_.fleet.weights.empty()) {
      group_weights_ = config_.fleet.weights;
      for (std::size_t g = 0; g < group_weights_.size(); ++g) {
        fleet_->set_group_weight(g, group_weights_[g]);
      }
    }
  }

  /// One request router per object group: the serving data plane in front
  /// of that group's placement. Built once, replica sets re-synced from the
  /// adopted placements at every epoch boundary.
  void build_routers() {
    if (!config_.serve.enabled) return;
    serve::ServeConfig serve_config;
    serve_config.service_ms = config_.serve.service_ms;
    serve_config.queue_cap = config_.serve.queue_cap;
    serve_config.policy = config_.serve.policy == "reject"
                              ? serve::ServeConfig::Policy::kReject
                              : serve::ServeConfig::Policy::kSpill;
    for (std::size_t g = 0; g < config_.fleet.groups; ++g) {
      routers_.push_back(std::make_unique<serve::RequestRouter>(serve_config));
    }
    sync_routers();
  }

  /// Pushes every group's adopted placement into its router (queue state of
  /// retained replicas carries over; see RequestRouter::set_replicas).
  void sync_routers() {
    for (std::size_t g = 0; g < routers_.size(); ++g) {
      std::vector<serve::ReplicaSpec> replicas;
      for (const auto node : fleet_->group(g).placement()) {
        replicas.push_back({node, coords_[node].position});
      }
      routers_[g]->set_replicas(replicas);
    }
  }

  /// Instant events (population drift, weight churn) whose at_ms has been
  /// reached take effect at the epoch boundary, before arrivals sample.
  void apply_instants(double epoch_start_ms) {
    while (next_population_ < population_.size() &&
           population_[next_population_].at_ms <= epoch_start_ms) {
      const PopulationChange& change = population_[next_population_];
      std::size_t to_add = change.add;
      std::size_t to_retire = change.retire;
      for (std::size_t c = 0; c < client_count_ && (to_add > 0 || to_retire > 0); ++c) {
        if (!change.mask[c]) continue;
        if (to_retire > 0 && active_[c]) {
          active_[c] = false;
          --to_retire;
        } else if (to_add > 0 && !active_[c]) {
          active_[c] = true;
          --to_add;
        }
      }
      // A surplus add/retire (fewer inactive/active clients in the region
      // than requested) clamps: the region simply saturates.
      ++next_population_;
    }
    while (next_weight_ < weight_changes_.size() &&
           weight_changes_[next_weight_].at_ms <= epoch_start_ms) {
      const WeightChange& change = weight_changes_[next_weight_];
      group_weights_[change.group] = change.weight;
      fleet_->set_group_weight(change.group, change.weight);
      ++next_weight_;
    }
  }

  std::set<topo::NodeId> down_at(double time_ms) const {
    std::set<topo::NodeId> down;
    for (const auto& outage : outages_) {
      if (time_ms >= outage.start_ms && time_ms < outage.end_ms) down.insert(outage.node);
    }
    return down;
  }

  /// Data centers excluded from epoch `e`'s placement round: any outage
  /// window intersecting the epoch's own window — a node that failed at any
  /// point of the epoch has unreliable state and may not host replicas in
  /// the next placement.
  std::set<topo::NodeId> excluded_for_epoch(std::size_t epoch) const {
    const double start = static_cast<double>(epoch) * config_.epoch_ms;
    const double end = start + config_.epoch_ms;
    std::set<topo::NodeId> excluded;
    for (const auto& outage : outages_) {
      if (outage.start_ms < end && start < outage.end_ms) excluded.insert(outage.node);
    }
    return excluded;
  }

  void begin_epoch(std::size_t epoch) {
    const double start = static_cast<double>(epoch) * config_.epoch_ms;
    const double end = start + config_.epoch_ms;
    apply_instants(start);

    // Arrival sampling: one decorrelated stream per (epoch, client), so the
    // schedule is independent of thread count and of every other client's
    // draw. The group draw consumes the same stream after the arrival
    // times, keeping per-access group assignment deterministic too.
    for (std::size_t c = 0; c < client_count_; ++c) {
      if (!active_[c]) continue;
      Rng rng = root_rng_.fork(static_cast<std::uint64_t>(epoch) * client_count_ + c);
      const auto arrivals = workload_->sample_arrival_times(c, start, end, rng);
      for (const double at : arrivals) {
        std::size_t group = 0;
        if (group_weights_.size() > 1) group = rng.weighted_index(group_weights_);
        simulator_.schedule_at(at, [this, c, group, at] { access(c, group, at); });
      }
    }
    simulator_.schedule_at(end, [this, epoch] { tick(epoch); });
  }

  void access(std::size_t client, std::size_t group, double at_ms) {
    const auto client_node = static_cast<topo::NodeId>(dcs_ + client);
    const std::set<topo::NodeId> down = down_at(at_ms);
    core::ReplicationManager& manager = fleet_->group(group);

    if (config_.serve.enabled) {
      // The serving data plane: admission-controlled routing to the nearest
      // up replica, with client-observed latency (true RTT + queue wait +
      // service time) accounted in the router's histogram. Rejected
      // requests never reach the manager — a dropped request is demand the
      // summarizer must not learn from.
      serve::RequestRouter& router = *routers_[group];
      router.set_down(down);
      const serve::RouteDecision decision =
          router.route(coords_[client_node].position, at_ms);
      if (decision.outcome == serve::RouteDecision::Outcome::kLost) {
        ++lost_accesses_;
        return;
      }
      if (!decision.admitted()) return;
      manager.record_access(decision.replica, coords_[client_node].position);
      const double rtt = topology_.rtt_ms(client_node, decision.replica);
      router.complete(decision, rtt);
      ++accesses_;
      delay_sum_ += rtt;
      const auto region = topology_.node(client_node).region;
      if (region < region_accesses_.size()) {
        ++region_accesses_[region];
        region_delay_sum_[region] += rtt;
      }
      return;
    }

    std::optional<topo::NodeId> replica;
    if (config_.routing == "true_rtt") {
      double best = std::numeric_limits<double>::infinity();
      for (const auto node : manager.placement()) {
        if (down.contains(node)) continue;
        const double rtt = topology_.rtt_ms(client_node, node);
        if (rtt < best) {
          best = rtt;
          replica = node;
        }
      }
    } else {
      replica = manager.route(coords_[client_node].position, down);
    }
    if (!replica.has_value()) {
      ++lost_accesses_;
      return;
    }
    manager.record_access(*replica, coords_[client_node].position);

    const double delay = topology_.rtt_ms(client_node, *replica);
    ++accesses_;
    delay_sum_ += delay;
    const auto region = topology_.node(client_node).region;
    if (region < region_accesses_.size()) {
      ++region_accesses_[region];
      region_delay_sum_[region] += delay;
    }
  }

  void tick(std::size_t epoch) {
    const auto excluded = excluded_for_epoch(epoch);
    const core::FleetEpochReport fleet_report = fleet_->run_epochs(excluded);

    EpochRow row;
    row.epoch = epoch;
    row.t_ms = simulator_.now();
    row.active_clients = static_cast<std::size_t>(
        std::count(active_.begin(), active_.end(), true));
    row.accesses = accesses_;
    row.lost_accesses = lost_accesses_;
    row.mean_delay_ms = accesses_ > 0 ? delay_sum_ / static_cast<double>(accesses_) : 0.0;
    row.excluded.assign(excluded.begin(), excluded.end());
    row.groups_migrated = fleet_report.groups_migrated;

    double objective_weighted = 0.0;
    double objective_accesses = 0.0;
    for (std::size_t g = 0; g < fleet_report.group_reports.size(); ++g) {
      const core::EpochReport& report = fleet_report.group_reports[g];
      row.replicas_moved +=
          report.adopted_placement == report.proposed_placement ? report.replicas_moved : 0;
      row.stale_sources += report.stale_sources;
      row.lost_sources += report.lost_sources;
      const std::size_t degree = fleet_->group(g).degree();
      row.degrees.push_back(degree);
      row.total_degree += degree;
      const double adopted_delay = report.adopted_placement == report.proposed_placement
                                       ? report.new_estimated_delay_ms
                                       : report.old_estimated_delay_ms;
      const auto weight = static_cast<double>(report.epoch_accesses);
      objective_weighted += adopted_delay * weight;
      objective_accesses += weight;
      row.stage_totals.ingest_flush_ms += report.stages.ingest_flush_ms;
      row.stage_totals.collect_ms += report.stages.collect_ms;
      row.stage_totals.propose_ms += report.stages.propose_ms;
      row.stage_totals.gate_ms += report.stages.gate_ms;
      row.stage_totals.adopt_ms += report.stages.adopt_ms;
    }
    row.objective_ms =
        objective_accesses > 0.0 ? objective_weighted / objective_accesses : 0.0;

    if (config_.serve.enabled) {
      // Merge per-group histograms in ascending group order (deterministic)
      // into the epoch histogram; merged quantiles equal a single-pass
      // histogram over all groups' samples by construction.
      serve::LatencyHistogram epoch_histogram;
      row.serve.enabled = true;
      for (const auto& router : routers_) {
        const serve::RequestRouter::Stats& stats = router->stats();
        row.serve.requests += stats.admitted + stats.rejected;
        row.serve.admitted += stats.admitted;
        row.serve.rejected += stats.rejected;
        row.serve.spilled += stats.spilled;
        epoch_histogram.merge(router->histogram());
        router->reset_epoch();
      }
      row.serve.p50_ms = epoch_histogram.quantile(0.50);
      row.serve.p99_ms = epoch_histogram.quantile(0.99);
      row.serve.p999_ms = epoch_histogram.quantile(0.999);
      row.serve.mean_ms = epoch_histogram.mean_ms();
      // The placement round may have moved replicas: re-point the routers
      // at the adopted placements before the next epoch's arrivals.
      sync_routers();
    }

    for (std::size_t r = 0; r < region_accesses_.size(); ++r) {
      if (region_accesses_[r] == 0) continue;
      const double mean =
          region_delay_sum_[r] / static_cast<double>(region_accesses_[r]);
      row.region_delay_ms.emplace_back(topology_.region_names()[r], mean);
      row.region_accesses.emplace_back(topology_.region_names()[r], region_accesses_[r]);
    }
    rows_.push_back(std::move(row));

    accesses_ = 0;
    lost_accesses_ = 0;
    delay_sum_ = 0.0;
    std::fill(region_accesses_.begin(), region_accesses_.end(), 0);
    std::fill(region_delay_sum_.begin(), region_delay_sum_.end(), 0.0);

    if (epoch + 1 < config_.epochs) begin_epoch(epoch + 1);
  }

  const ScenarioConfig& config_;
  sim::Simulator simulator_;

  topo::Topology topology_;
  std::vector<coord::NetworkCoordinate> coords_;
  std::vector<place::CandidateInfo> candidates_;
  std::size_t dcs_ = 0;
  std::size_t client_count_ = 0;

  std::vector<wl::RateProfile> profiles_;  ///< consumed by build_workload
  std::vector<OutageWindow> outages_;
  std::vector<PopulationChange> population_;
  std::vector<WeightChange> weight_changes_;
  std::size_t next_population_ = 0;
  std::size_t next_weight_ = 0;

  std::unique_ptr<wl::Workload> workload_;
  std::unique_ptr<core::FleetManager> fleet_;
  /// Per-group serving data plane (empty when serve is disabled).
  std::vector<std::unique_ptr<serve::RequestRouter>> routers_;
  std::vector<double> group_weights_;
  std::vector<bool> active_;
  Rng root_rng_;

  // Per-epoch accumulators.
  std::uint64_t accesses_ = 0;
  std::uint64_t lost_accesses_ = 0;
  double delay_sum_ = 0.0;
  std::vector<std::uint64_t> region_accesses_;
  std::vector<double> region_delay_sum_;

  std::vector<EpochRow> rows_;
};

}  // namespace

std::string ScenarioResult::jsonl() const {
  std::string out;
  for (const auto& line : jsonl_lines) {
    out += line;
    out += '\n';
  }
  return out;
}

std::string ScenarioResult::timings_jsonl() const {
  std::string out;
  for (const auto& row : epochs) {
    out += "{\"epoch\":" + std::to_string(row.epoch);
    out += ",\"t_ms\":" + format_double(row.t_ms);
    out += ",\"ingest_flush_ms\":" + format_double(row.stage_totals.ingest_flush_ms);
    out += ",\"collect_ms\":" + format_double(row.stage_totals.collect_ms);
    out += ",\"propose_ms\":" + format_double(row.stage_totals.propose_ms);
    out += ",\"gate_ms\":" + format_double(row.stage_totals.gate_ms);
    out += ",\"adopt_ms\":" + format_double(row.stage_totals.adopt_ms);
    out += ",\"total_ms\":" + format_double(row.stage_totals.total_ms());
    out += "}\n";
  }
  return out;
}

std::string ScenarioResult::table() const {
  TextTable table;
  table.set_columns({"epoch", "t_s", "clients", "accesses", "lost", "delay_ms",
                     "objective", "migr", "moved", "stale", "lostsrc", "k"});
  char cell[64];
  for (const auto& row : epochs) {
    std::vector<std::string> cells;
    cells.push_back(std::to_string(row.epoch));
    std::snprintf(cell, sizeof cell, "%.0f", row.t_ms / 1000.0);
    cells.emplace_back(cell);
    cells.push_back(std::to_string(row.active_clients));
    cells.push_back(std::to_string(row.accesses));
    cells.push_back(std::to_string(row.lost_accesses));
    std::snprintf(cell, sizeof cell, "%.2f", row.mean_delay_ms);
    cells.emplace_back(cell);
    std::snprintf(cell, sizeof cell, "%.2f", row.objective_ms);
    cells.emplace_back(cell);
    cells.push_back(std::to_string(row.groups_migrated));
    cells.push_back(std::to_string(row.replicas_moved));
    cells.push_back(std::to_string(row.stale_sources));
    cells.push_back(std::to_string(row.lost_sources));
    cells.push_back(std::to_string(row.total_degree));
    table.add_row(std::move(cells));
  }
  return table.to_string();
}

ScenarioResult run_scenario(const ScenarioConfig& config) {
  return Engine(config).run();
}

std::string write_artifacts(const ScenarioConfig& config, const ScenarioResult& result,
                            const std::string& out_dir) {
  namespace fs = std::filesystem;
  const fs::path base(out_dir);
  fs::create_directories(base / "runs");
  fs::create_directories(base / "tables");
  const std::string stem = config.name + "-seed" + std::to_string(config.seed);

  const fs::path jsonl_path = base / "runs" / (stem + ".jsonl");
  {
    std::ofstream out(jsonl_path, std::ios::binary);
    GEORED_ENSURE(out.good(), "cannot write " + jsonl_path.string());
    out << result.jsonl();
  }
  const fs::path table_path = base / "tables" / (stem + ".txt");
  {
    std::ofstream out(table_path, std::ios::binary);
    GEORED_ENSURE(out.good(), "cannot write " + table_path.string());
    out << result.table();
  }
  return jsonl_path.string();
}

}  // namespace geored::scenario
