// Shared result-formatting helpers for experiment harnesses.
//
// Every experiment front-end — the scenario runner, the figure benches, the
// ablation binaries — renders the same three shapes: a titled setup header,
// a fixed-width numeric table (one row per x-value, one column per series),
// and PASS/FAIL shape checks. This header is the single home for those
// helpers plus the deterministic number formatting the scenario engine's
// jsonl output depends on; bench/bench_util.h forwards here so the legacy
// harnesses and the engine print through one implementation.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace geored::scenario {

inline void print_header(const std::string& title, const std::string& setup) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("%s\n", setup.c_str());
  std::printf("==============================================================\n");
}

inline void print_row_header(const std::string& x_label,
                             const std::vector<std::string>& series) {
  std::printf("%-22s", x_label.c_str());
  for (const auto& name : series) std::printf("%18s", name.c_str());
  std::printf("\n");
}

inline void print_row(double x, const std::vector<double>& values) {
  std::printf("%-22.0f", x);
  for (const double v : values) std::printf("%18.2f", v);
  std::printf("\n");
}

inline void print_check(const std::string& description, bool passed) {
  std::printf("  [%s] %s\n", passed ? "PASS" : "FAIL", description.c_str());
}

/// Shortest round-trippable decimal rendering of `v` (printf %.10g): the
/// same bytes on every platform and thread count for the same double, which
/// is what makes scenario jsonl byte-reproducible. Not locale-sensitive.
inline std::string format_double(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.10g", v);
  return std::string(buffer);
}

/// A plain-text table with per-column widths fitted to the content:
/// set_columns once, add_row repeatedly (cells pre-rendered as strings),
/// then to_string. Right-aligns every cell, two spaces between columns.
class TextTable {
 public:
  void set_columns(std::vector<std::string> names) {
    columns_ = std::move(names);
    widths_.assign(columns_.size(), 0);
    for (std::size_t c = 0; c < columns_.size(); ++c) widths_[c] = columns_[c].size();
  }

  void add_row(std::vector<std::string> cells) {
    for (std::size_t c = 0; c < cells.size() && c < widths_.size(); ++c) {
      if (cells[c].size() > widths_[c]) widths_[c] = cells[c].size();
    }
    rows_.push_back(std::move(cells));
  }

  std::string to_string() const {
    std::string out;
    append_row(out, columns_);
    for (const auto& row : rows_) append_row(out, row);
    return out;
  }

 private:
  void append_row(std::string& out, const std::vector<std::string>& cells) const {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out += "  ";
      const std::size_t width = c < widths_.size() ? widths_[c] : cells[c].size();
      for (std::size_t pad = cells[c].size(); pad < width; ++pad) out += ' ';
      out += cells[c];
    }
    out += '\n';
  }

  std::vector<std::string> columns_;
  std::vector<std::size_t> widths_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace geored::scenario
