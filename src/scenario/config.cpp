#include "scenario/config.h"

#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <utility>

namespace geored::scenario {

namespace {

const char* kind_word(ScenarioError::Kind kind) {
  switch (kind) {
    case ScenarioError::Kind::kSyntax: return "syntax";
    case ScenarioError::Kind::kUnknownKey: return "unknown-key";
    case ScenarioError::Kind::kBadValue: return "bad-value";
    case ScenarioError::Kind::kBadReference: return "bad-reference";
    case ScenarioError::Kind::kBadSchedule: return "bad-schedule";
  }
  return "error";
}

std::string render(ScenarioError::Kind kind, const std::string& path,
                   const std::string& message) {
  std::string out = "scenario error (";
  out += kind_word(kind);
  out += ")";
  if (!path.empty()) {
    out += " at ";
    out += path;
  }
  out += ": ";
  out += message;
  return out;
}

// ---------------------------------------------------------------------------
// Minimal JSON document model + recursive-descent parser. Hand-rolled so the
// library stays dependency-free; strict (no comments, no trailing commas,
// duplicate keys rejected) because scenario files are experiment inputs and
// silent sloppiness would undermine reproducibility.
// ---------------------------------------------------------------------------

struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<Json> items;
  std::vector<std::pair<std::string, Json>> members;  ///< insertion order

  const Json* find(const std::string& key) const {
    for (const auto& [name, value] : members) {
      if (name == key) return &value;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Json parse() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing content after the document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1, column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    throw ScenarioError(ScenarioError::Kind::kSyntax, "",
                        "line " + std::to_string(line) + " column " + std::to_string(column) +
                            ": " + message);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of document");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    std::size_t n = 0;
    while (literal[n] != '\0') ++n;
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value() {
    skip_whitespace();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      Json value;
      value.type = Json::Type::kString;
      value.text = parse_string();
      return value;
    }
    if (c == 't' || c == 'f') {
      Json value;
      value.type = Json::Type::kBool;
      if (consume_literal("true")) {
        value.boolean = true;
      } else if (consume_literal("false")) {
        value.boolean = false;
      } else {
        fail("malformed literal");
      }
      return value;
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("malformed literal");
      return Json{};
    }
    return parse_number();
  }

  Json parse_object() {
    expect('{');
    Json value;
    value.type = Json::Type::kObject;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      if (value.find(key) != nullptr) fail("duplicate key \"" + key + "\"");
      skip_whitespace();
      expect(':');
      value.members.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == '}') {
        ++pos_;
        return value;
      }
      fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    Json value;
    value.type = Json::Type::kArray;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.items.push_back(parse_value());
      skip_whitespace();
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == ']') {
        ++pos_;
        return value;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail("unknown escape sequence");
      }
    }
  }

  std::string parse_unicode_escape() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    std::uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code += static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code += static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code += static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("malformed \\u escape");
      }
    }
    // UTF-8 encode the basic-multilingual-plane code point (surrogate pairs
    // are rejected — region names and descriptions have no business there).
    if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate \\u escapes are not supported");
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return out;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) fail("malformed number");
    Json value;
    value.type = Json::Type::kNumber;
    try {
      value.number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("malformed number");
    }
    return value;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Schema reader: typed field accessors over one JSON object, tracking which
// keys were consumed so finish() can reject the rest as unknown.
// ---------------------------------------------------------------------------

[[noreturn]] void bad_value(const std::string& path, const std::string& message) {
  throw ScenarioError(ScenarioError::Kind::kBadValue, path, message);
}

class ObjectReader {
 public:
  ObjectReader(const Json& json, std::string path) : json_(json), path_(std::move(path)) {
    if (json_.type != Json::Type::kObject) bad_value(path_, "expected an object");
  }

  const std::string& path() const { return path_; }

  std::string member_path(const std::string& key) const {
    return path_.empty() ? key : path_ + "." + key;
  }

  const Json* child(const std::string& key) {
    const Json* value = json_.find(key);
    if (value != nullptr) consumed_.push_back(key);
    return value;
  }

  bool has(const std::string& key) const { return json_.find(key) != nullptr; }

  double number(const std::string& key, double fallback) {
    const Json* value = child(key);
    if (value == nullptr) return fallback;
    if (value->type != Json::Type::kNumber) bad_value(member_path(key), "expected a number");
    if (!std::isfinite(value->number)) bad_value(member_path(key), "number must be finite");
    return value->number;
  }

  std::uint64_t unsigned_integer(const std::string& key, std::uint64_t fallback) {
    const Json* value = child(key);
    if (value == nullptr) return fallback;
    if (value->type != Json::Type::kNumber) bad_value(member_path(key), "expected a number");
    const double v = value->number;
    if (!(v >= 0.0) || v != std::floor(v) || v > 9.007199254740992e15) {
      bad_value(member_path(key), "expected a non-negative integer");
    }
    return static_cast<std::uint64_t>(v);
  }

  std::size_t size_value(const std::string& key, std::size_t fallback) {
    return static_cast<std::size_t>(unsigned_integer(key, fallback));
  }

  bool boolean(const std::string& key, bool fallback) {
    const Json* value = child(key);
    if (value == nullptr) return fallback;
    if (value->type != Json::Type::kBool) {
      bad_value(member_path(key), "expected true or false");
    }
    return value->boolean;
  }

  std::string string(const std::string& key, std::string fallback) {
    const Json* value = child(key);
    if (value == nullptr) return fallback;
    if (value->type != Json::Type::kString) bad_value(member_path(key), "expected a string");
    return value->text;
  }

  /// Rejects every key the schema did not consume.
  void finish() {
    for (const auto& [key, value] : json_.members) {
      bool known = false;
      for (const auto& name : consumed_) {
        if (name == key) {
          known = true;
          break;
        }
      }
      if (!known) {
        throw ScenarioError(ScenarioError::Kind::kUnknownKey, member_path(key),
                            "unknown key \"" + key + "\"");
      }
    }
  }

 private:
  const Json& json_;
  std::string path_;
  std::vector<std::string> consumed_;
};

// ---------------------------------------------------------------------------
// Section readers.
// ---------------------------------------------------------------------------

TopologySpec read_topology(const Json& json, const std::string& path) {
  ObjectReader reader(json, path);
  TopologySpec spec;
  spec.nodes = reader.size_value("nodes", spec.nodes);
  spec.dcs = reader.size_value("dcs", spec.dcs);
  spec.seed = reader.unsigned_integer("seed", spec.seed);
  reader.finish();
  if (spec.nodes < 2) bad_value(path + ".nodes", "need at least 2 nodes");
  if (spec.dcs < 1) bad_value(path + ".dcs", "need at least 1 data center");
  if (spec.dcs >= spec.nodes) {
    bad_value(path + ".dcs", "every node is a data center; no clients remain");
  }
  return spec;
}

CoordsSpec read_coords(const Json& json, const std::string& path) {
  ObjectReader reader(json, path);
  CoordsSpec spec;
  spec.system = reader.string("system", spec.system);
  spec.rounds = reader.size_value("rounds", spec.rounds);
  spec.seed = reader.unsigned_integer("seed", spec.seed);
  reader.finish();
  if (spec.system != "rnp" && spec.system != "vivaldi") {
    bad_value(path + ".system", "expected \"rnp\" or \"vivaldi\"");
  }
  if (spec.rounds < 1) bad_value(path + ".rounds", "need at least 1 gossip round");
  return spec;
}

WorkloadSpec read_workload(const Json& json, const std::string& path) {
  ObjectReader reader(json, path);
  WorkloadSpec spec;
  spec.kind = reader.string("kind", spec.kind);
  spec.mean_rate = reader.number("mean_rate", spec.mean_rate);
  spec.sigma = reader.number("sigma", spec.sigma);
  spec.total_rate = reader.number("total_rate", spec.total_rate);
  spec.exponent = reader.number("exponent", spec.exponent);
  spec.seed = reader.unsigned_integer("seed", spec.seed);
  reader.finish();
  if (spec.kind != "uniform" && spec.kind != "zipf") {
    bad_value(path + ".kind", "expected \"uniform\" or \"zipf\"");
  }
  if (spec.mean_rate <= 0.0) bad_value(path + ".mean_rate", "rate must be positive");
  if (spec.sigma < 0.0) bad_value(path + ".sigma", "sigma must be non-negative");
  if (spec.total_rate <= 0.0) bad_value(path + ".total_rate", "rate must be positive");
  if (spec.exponent < 0.0) bad_value(path + ".exponent", "exponent must be non-negative");
  return spec;
}

void read_manager(const Json& json, const std::string& path, core::ManagerConfig& config) {
  ObjectReader reader(json, path);
  config.replication_degree =
      reader.size_value("replication_degree", config.replication_degree);
  config.dynamic_degree = reader.boolean("dynamic_degree", config.dynamic_degree);
  config.grow_accesses_per_replica =
      reader.number("grow_accesses_per_replica", config.grow_accesses_per_replica);
  config.shrink_accesses_per_replica =
      reader.number("shrink_accesses_per_replica", config.shrink_accesses_per_replica);
  config.min_degree = reader.size_value("min_degree", config.min_degree);
  config.max_degree = reader.size_value("max_degree", config.max_degree);
  config.summarizer.max_clusters =
      reader.size_value("micro_clusters", config.summarizer.max_clusters);
  config.migration.min_relative_gain =
      reader.number("migration_min_relative_gain", config.migration.min_relative_gain);
  config.migration.min_absolute_gain_ms =
      reader.number("migration_min_absolute_gain_ms", config.migration.min_absolute_gain_ms);
  config.warm_start_macro_clusters =
      reader.boolean("warm_start", config.warm_start_macro_clusters);
  reader.finish();
  if (config.replication_degree < 1) {
    bad_value(path + ".replication_degree", "degree must be >= 1");
  }
  if (config.min_degree < 1 || config.min_degree > config.max_degree) {
    bad_value(path + ".min_degree", "degree bounds must satisfy 1 <= min <= max");
  }
  if (config.summarizer.max_clusters < 1) {
    bad_value(path + ".micro_clusters", "need at least 1 micro-cluster");
  }
  if (config.migration.min_relative_gain < 0.0) {
    bad_value(path + ".migration_min_relative_gain", "gain threshold must be non-negative");
  }
  if (config.migration.min_absolute_gain_ms < 0.0) {
    bad_value(path + ".migration_min_absolute_gain_ms",
              "gain threshold must be non-negative");
  }
}

FleetSpec read_fleet(const Json& json, const std::string& path) {
  ObjectReader reader(json, path);
  FleetSpec spec;
  spec.groups = reader.size_value("groups", spec.groups);
  spec.replica_budget = reader.size_value("replica_budget", spec.replica_budget);
  spec.min_degree = reader.size_value("min_degree", spec.min_degree);
  spec.max_degree = reader.size_value("max_degree", spec.max_degree);
  if (const Json* weights = reader.child("weights")) {
    if (weights->type != Json::Type::kArray) {
      bad_value(path + ".weights", "expected an array of numbers");
    }
    for (std::size_t i = 0; i < weights->items.size(); ++i) {
      const Json& item = weights->items[i];
      const std::string item_path = path + ".weights[" + std::to_string(i) + "]";
      if (item.type != Json::Type::kNumber) bad_value(item_path, "expected a number");
      if (!(item.number > 0.0) || !std::isfinite(item.number)) {
        bad_value(item_path, "weights must be positive and finite");
      }
      spec.weights.push_back(item.number);
    }
  }
  reader.finish();
  if (spec.groups < 1) bad_value(path + ".groups", "need at least 1 group");
  if (spec.min_degree < 1 || spec.min_degree > spec.max_degree) {
    bad_value(path + ".min_degree", "degree bounds must satisfy 1 <= min <= max");
  }
  if (spec.replica_budget > 0 && spec.replica_budget < spec.groups * spec.min_degree) {
    bad_value(path + ".replica_budget",
              "budget cannot cover the minimum degree for every group");
  }
  if (!spec.weights.empty() && spec.weights.size() != spec.groups) {
    throw ScenarioError(ScenarioError::Kind::kBadReference, path + ".weights",
                        "expected one weight per group (" + std::to_string(spec.groups) + ")");
  }
  return spec;
}

void read_rpc(const Json& json, const std::string& path, net::RpcCollectorConfig& rpc) {
  ObjectReader reader(json, path);
  rpc.faults.drop = reader.number("drop", rpc.faults.drop);
  rpc.faults.delay = reader.number("delay", rpc.faults.delay);
  rpc.faults.duplicate = reader.number("duplicate", rpc.faults.duplicate);
  rpc.faults.truncate = reader.number("truncate", rpc.faults.truncate);
  rpc.faults.disconnect = reader.number("disconnect", rpc.faults.disconnect);
  rpc.faults.delay_ms = reader.unsigned_integer("delay_ms", rpc.faults.delay_ms);
  rpc.faults.seed = reader.unsigned_integer("fault_seed", rpc.faults.seed);
  rpc.max_attempts = reader.size_value("max_attempts", rpc.max_attempts);
  rpc.timeout_ms = reader.unsigned_integer("timeout_ms", rpc.timeout_ms);
  reader.finish();
  for (const auto& [key, probability] :
       {std::pair<const char*, double>{"drop", rpc.faults.drop},
        {"delay", rpc.faults.delay},
        {"duplicate", rpc.faults.duplicate},
        {"truncate", rpc.faults.truncate},
        {"disconnect", rpc.faults.disconnect}}) {
    if (probability < 0.0 || probability > 1.0) {
      bad_value(path + "." + key, "probability must lie in [0,1]");
    }
  }
  if (rpc.max_attempts < 1) bad_value(path + ".max_attempts", "need at least 1 attempt");
}

ServeSpec read_serve(const Json& json, const std::string& path) {
  ObjectReader reader(json, path);
  ServeSpec spec;
  spec.enabled = true;
  spec.service_ms = reader.number("service_ms", spec.service_ms);
  spec.queue_cap = reader.size_value("queue_cap", spec.queue_cap);
  spec.policy = reader.string("policy", spec.policy);
  reader.finish();
  if (!(spec.service_ms > 0.0)) {
    bad_value(path + ".service_ms", "service time must be positive");
  }
  if (spec.queue_cap < 1) bad_value(path + ".queue_cap", "need at least 1 queue slot");
  if (spec.policy != "spill" && spec.policy != "reject") {
    bad_value(path + ".policy", "expected \"spill\" or \"reject\"");
  }
  return spec;
}

bool region_pattern_valid(const std::string& pattern) {
  if (pattern.empty()) return false;
  // "*" alone, a literal name, or a prefix followed by a single trailing '*'.
  const std::size_t star = pattern.find('*');
  if (star == std::string::npos) return true;
  return star == pattern.size() - 1;
}

Event read_event(const Json& json, const std::string& path) {
  ObjectReader reader(json, path);
  Event event;
  const std::string kind = reader.string("kind", "");
  if (kind == "diurnal") {
    event.kind = Event::Kind::kDiurnal;
    event.region = reader.string("region", "*");
    event.period_ms = reader.number("period_ms", event.period_ms);
    event.phase = reader.number("phase", event.phase);
    event.floor = reader.number("floor", event.floor);
    reader.finish();
    if (event.period_ms <= 0.0) bad_value(path + ".period_ms", "period must be positive");
    if (event.phase < 0.0 || event.phase >= 1.0) {
      bad_value(path + ".phase", "phase must lie in [0,1)");
    }
    if (event.floor < 0.0 || event.floor > 1.0) {
      bad_value(path + ".floor", "floor must lie in [0,1]");
    }
  } else if (kind == "flash_crowd") {
    event.kind = Event::Kind::kFlashCrowd;
    event.region = reader.string("region", "*");
    event.start_ms = reader.number("start_ms", event.start_ms);
    event.end_ms = reader.number("end_ms", event.end_ms);
    event.factor = reader.number("factor", event.factor);
    reader.finish();
    if (event.start_ms < 0.0) bad_value(path + ".start_ms", "window must start at t >= 0");
    if (event.end_ms <= event.start_ms) {
      throw ScenarioError(ScenarioError::Kind::kBadSchedule, path + ".end_ms",
                          "window must end after it starts");
    }
    if (!(event.factor > 0.0)) bad_value(path + ".factor", "factor must be positive");
  } else if (kind == "outage") {
    event.kind = Event::Kind::kOutage;
    const bool has_region = reader.has("region");
    const bool has_node = reader.has("node");
    if (has_region && has_node) {
      bad_value(path, "outage takes either a region or a node, not both");
    }
    if (!has_region && !has_node) {
      bad_value(path, "outage needs a region pattern or a node id");
    }
    if (has_node) {
      event.node = static_cast<topo::NodeId>(reader.unsigned_integer("node", 0));
    } else {
      event.region = reader.string("region", "*");
    }
    event.start_ms = reader.number("start_ms", event.start_ms);
    event.end_ms = reader.number("end_ms", event.end_ms);
    reader.finish();
    if (event.start_ms < 0.0) bad_value(path + ".start_ms", "window must start at t >= 0");
    if (event.end_ms <= event.start_ms) {
      throw ScenarioError(ScenarioError::Kind::kBadSchedule, path + ".end_ms",
                          "window must end after it starts");
    }
  } else if (kind == "population") {
    event.kind = Event::Kind::kPopulation;
    event.region = reader.string("region", "*");
    event.at_ms = reader.number("at_ms", event.at_ms);
    event.add = reader.size_value("add", 0);
    event.retire = reader.size_value("retire", 0);
    reader.finish();
    if (event.at_ms < 0.0) bad_value(path + ".at_ms", "events fire at t >= 0");
    if (event.add == 0 && event.retire == 0) {
      bad_value(path, "population event must add or retire at least one client");
    }
  } else if (kind == "group_weight") {
    event.kind = Event::Kind::kGroupWeight;
    event.at_ms = reader.number("at_ms", event.at_ms);
    event.group = reader.size_value("group", 0);
    event.weight = reader.number("weight", event.weight);
    reader.finish();
    if (event.at_ms < 0.0) bad_value(path + ".at_ms", "events fire at t >= 0");
    if (!(event.weight > 0.0)) bad_value(path + ".weight", "weight must be positive");
  } else {
    bad_value(path + ".kind",
              "expected \"diurnal\", \"flash_crowd\", \"outage\", \"population\", or "
              "\"group_weight\"");
  }
  if (!event.node.has_value() && !region_pattern_valid(event.region)) {
    bad_value(path + ".region",
              "region must be \"*\", a region name, or a prefix pattern like \"eu-*\"");
  }
  return event;
}

/// The target key two events of the same kind collide on.
std::string event_target(const Event& event) {
  if (event.node.has_value()) return "node:" + std::to_string(*event.node);
  return "region:" + event.region;
}

void validate_schedule(const ScenarioConfig& config) {
  const double horizon_ms = static_cast<double>(config.epochs) * config.epoch_ms;
  double previous_ms = 0.0;
  for (std::size_t i = 0; i < config.events.size(); ++i) {
    const Event& event = config.events[i];
    const std::string path = "events[" + std::to_string(i) + "]";
    const double effective = event.effective_ms();
    if (effective < previous_ms) {
      throw ScenarioError(ScenarioError::Kind::kBadSchedule, path,
                          "events must be listed in order of their effective time");
    }
    previous_ms = effective;
    if (effective >= horizon_ms) {
      throw ScenarioError(ScenarioError::Kind::kBadSchedule, path,
                          "event takes effect at or after the scenario horizon (" +
                              std::to_string(horizon_ms) + " ms)");
    }
    if (event.kind == Event::Kind::kGroupWeight && event.group >= config.fleet.groups) {
      throw ScenarioError(ScenarioError::Kind::kBadReference, path + ".group",
                          "group " + std::to_string(event.group) +
                              " does not exist (fleet has " +
                              std::to_string(config.fleet.groups) + ")");
    }
    if (event.node.has_value() && *event.node >= config.topology.dcs) {
      throw ScenarioError(ScenarioError::Kind::kBadReference, path + ".node",
                          "node " + std::to_string(*event.node) +
                              " is not a data center (dcs = " +
                              std::to_string(config.topology.dcs) + ")");
    }
    // Same-kind, same-target events must not overlap: two flash crowds on
    // one region or two outages of one data center with intersecting
    // windows is almost certainly an authoring mistake, and "which factor
    // wins" has no obvious answer. Diurnal envelopes are unbounded, so one
    // per target at most.
    for (std::size_t j = 0; j < i; ++j) {
      const Event& other = config.events[j];
      if (other.kind != event.kind || event_target(other) != event_target(event)) continue;
      if (event.kind == Event::Kind::kDiurnal) {
        throw ScenarioError(ScenarioError::Kind::kBadSchedule, path,
                            "a second diurnal envelope for the same target");
      }
      if (event.kind == Event::Kind::kFlashCrowd || event.kind == Event::Kind::kOutage) {
        if (event.start_ms < other.end_ms && other.start_ms < event.end_ms) {
          throw ScenarioError(ScenarioError::Kind::kBadSchedule, path,
                              "window overlaps events[" + std::to_string(j) +
                                  "] on the same target");
        }
      }
    }
  }
}

}  // namespace

ScenarioError::ScenarioError(Kind kind, std::string path, const std::string& message)
    : std::invalid_argument(render(kind, path, message)),
      kind_(kind),
      path_(std::move(path)) {}

double Event::effective_ms() const {
  switch (kind) {
    case Kind::kDiurnal: return 0.0;
    case Kind::kFlashCrowd:
    case Kind::kOutage: return start_ms;
    case Kind::kPopulation:
    case Kind::kGroupWeight: return at_ms;
  }
  return 0.0;
}

ScenarioConfig parse_scenario(const std::string& text) {
  const Json document = JsonParser(text).parse();
  if (document.type != Json::Type::kObject) {
    throw ScenarioError(ScenarioError::Kind::kBadValue, "",
                        "the scenario document must be a JSON object");
  }
  ObjectReader reader(document, "");
  ScenarioConfig config;
  config.name = reader.string("name", "");
  config.description = reader.string("description", "");
  config.seed = reader.unsigned_integer("seed", config.seed);
  config.epochs = reader.size_value("epochs", config.epochs);
  config.epoch_ms = reader.number("epoch_ms", config.epoch_ms);
  if (const Json* section = reader.child("topology")) {
    config.topology = read_topology(*section, "topology");
  }
  if (const Json* section = reader.child("coords")) {
    config.coords = read_coords(*section, "coords");
  }
  if (const Json* section = reader.child("workload")) {
    config.workload = read_workload(*section, "workload");
  }
  if (const Json* section = reader.child("manager")) {
    read_manager(*section, "manager", config.manager);
  }
  if (const Json* section = reader.child("fleet")) {
    config.fleet = read_fleet(*section, "fleet");
  }
  config.collector = reader.string("collector", config.collector);
  if (const Json* section = reader.child("rpc")) {
    read_rpc(*section, "rpc", config.rpc);
  }
  config.routing = reader.string("routing", config.routing);
  if (const Json* section = reader.child("serve")) {
    config.serve = read_serve(*section, "serve");
  }
  config.initial_active_fraction =
      reader.number("initial_active_fraction", config.initial_active_fraction);
  if (const Json* section = reader.child("events")) {
    if (section->type != Json::Type::kArray) {
      bad_value("events", "expected an array of event objects");
    }
    for (std::size_t i = 0; i < section->items.size(); ++i) {
      config.events.push_back(
          read_event(section->items[i], "events[" + std::to_string(i) + "]"));
    }
  }
  reader.finish();

  if (config.name.empty()) bad_value("name", "every scenario needs a name");
  if (config.epochs < 1) bad_value("epochs", "need at least 1 epoch");
  if (!(config.epoch_ms > 0.0)) bad_value("epoch_ms", "epoch length must be positive");
  if (config.collector != "direct" && config.collector != "rpc") {
    bad_value("collector", "expected \"direct\" or \"rpc\"");
  }
  if (config.collector == "rpc" && config.fleet.groups != 1) {
    bad_value("collector",
              "the rpc collector serializes one wire conversation and supports "
              "single-group fleets only");
  }
  if (config.routing != "coords" && config.routing != "true_rtt") {
    bad_value("routing", "expected \"coords\" or \"true_rtt\"");
  }
  if (config.serve.enabled && config.routing != "coords") {
    bad_value("serve",
              "the serving data plane selects replicas in coordinate space and "
              "requires routing \"coords\"");
  }
  if (!(config.initial_active_fraction > 0.0) || config.initial_active_fraction > 1.0) {
    bad_value("initial_active_fraction", "fraction must lie in (0,1]");
  }
  validate_schedule(config);
  return config;
}

ScenarioConfig load_scenario_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open scenario file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_scenario(buffer.str());
}

}  // namespace geored::scenario
