// Scenario execution: a parsed ScenarioConfig becomes a seeded event
// schedule on sim::Simulator, driving a FleetManager through every epoch.
//
// The runner is the shared experiment loop the hard-coded bench/example
// binaries each used to reimplement: build the world, sample arrivals,
// route and record accesses, run placement epochs with the scheduled
// exclusions, and emit results. Output is structured per-epoch jsonl (fixed
// key order, printf %.10g doubles) plus an aggregated sweep table.
//
// Determinism: every random stream forks from the scenario seed, arrivals
// are sampled and executed in simulator order (single-threaded by design),
// and the epoch pipeline underneath is bit-identical at any thread count —
// so the same (config, seed) reproduces byte-identical jsonl at any
// GEORED_THREADS.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/epoch_trace.h"
#include "scenario/config.h"

namespace geored::scenario {

/// What the serving data plane measured over one epoch (present in the
/// jsonl row only when the scenario has a "serve" block). Quantiles come
/// from the byte-stable serve::LatencyHistogram, so every field is pinned
/// by the golden transcripts.
struct ServeEpochStats {
  bool enabled = false;
  std::uint64_t requests = 0;  ///< admitted + rejected (lost stays in lost_accesses)
  std::uint64_t admitted = 0;  ///< served, including spilled
  std::uint64_t rejected = 0;  ///< dropped by admission control
  std::uint64_t spilled = 0;   ///< served by the second-nearest replica
  double p50_ms = 0.0;         ///< client-observed latency quantiles:
  double p99_ms = 0.0;         ///< RTT + queue wait + service time
  double p999_ms = 0.0;
  double mean_ms = 0.0;
};

/// What one epoch measured and decided, the row behind one jsonl line.
struct EpochRow {
  std::size_t epoch = 0;
  double t_ms = 0.0;  ///< epoch window end (the tick instant)
  std::size_t active_clients = 0;
  std::uint64_t accesses = 0;
  std::uint64_t lost_accesses = 0;  ///< found no live replica
  double mean_delay_ms = 0.0;       ///< measured true-RTT mean over the epoch
  double objective_ms = 0.0;  ///< access-weighted estimated delay of adopted placements
  std::size_t groups_migrated = 0;
  std::size_t replicas_moved = 0;
  std::size_t stale_sources = 0;
  std::size_t lost_sources = 0;
  std::size_t total_degree = 0;
  std::vector<std::size_t> degrees;    ///< per group, after the epoch
  std::vector<topo::NodeId> excluded;  ///< data centers excluded this epoch
  /// Per-region measured delay / access count (region-name keyed, topology
  /// region order, regions with traffic only).
  std::vector<std::pair<std::string, double>> region_delay_ms;
  std::vector<std::pair<std::string, std::uint64_t>> region_accesses;
  /// Serving data plane counters and latency quantiles for the epoch.
  ServeEpochStats serve;
  /// Wall time per pipeline stage, summed over the fleet's group epochs.
  /// Observational (varies run to run); rendered only by the optional
  /// timings sidecar, never by the deterministic jsonl()/table() outputs.
  core::EpochStageTrace stage_totals;
};

struct ScenarioResult {
  std::vector<EpochRow> epochs;
  std::vector<std::string> jsonl_lines;  ///< one line per epoch, no newline

  /// All lines joined with '\n', trailing newline included.
  std::string jsonl() const;

  /// The aggregated sweep table (fixed-width text, one row per epoch).
  std::string table() const;

  /// Per-epoch stage-timing sidecar (one json object per line, trailing
  /// newline included): wall milliseconds each epoch spent in ingest-flush /
  /// collect / propose / gate / adopt across the fleet. Deliberately a
  /// separate stream from jsonl(): timings vary run to run, and the golden
  /// transcripts pin jsonl() byte for byte.
  std::string timings_jsonl() const;
};

/// Runs the scenario to completion. Throws ScenarioError (kBadReference)
/// when an event's region pattern matches nothing in the generated
/// topology. The result is a pure function of `config`.
ScenarioResult run_scenario(const ScenarioConfig& config);

/// Writes <out_dir>/runs/<name>-seed<seed>.jsonl and
/// <out_dir>/tables/<name>-seed<seed>.txt (directories created as needed);
/// returns the jsonl path.
std::string write_artifacts(const ScenarioConfig& config, const ScenarioResult& result,
                            const std::string& out_dir);

}  // namespace geored::scenario
