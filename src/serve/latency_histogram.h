// Fixed-bucket log-scale latency histogram for the serving data plane.
//
// Tail quantiles (p99/p999) need the full latency distribution, but keeping
// every sample would make per-epoch accounting O(requests) memory and the
// jsonl output non-mergeable. This histogram is the HDR-style compromise:
// a fixed array of quarter-octave buckets whose edges are the exactly
// representable doubles
//
//   edge(i) = (1 + (i mod 4) / 4) * 2^(kMinExponent + i / 4)   [milliseconds]
//
// so bucket boundaries, bucket lookup (frexp, no log/pow), quantiles, and
// merges involve no rounding at all — the histogram is byte-stable across
// platforms and thread counts, which is what lets the scenario golden
// transcripts pin p99 fields byte for byte. Quarter-octave buckets bound
// the relative quantile error at 25% of the bucket floor, ample for
// tail-latency reporting across the ~1 us .. ~35 min range covered here.
//
// Merging is bucketwise addition, so per-group (or per-shard) histograms
// combine into an epoch histogram whose quantiles equal a single-pass
// histogram over the concatenated samples — a property the router tests
// assert exhaustively.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <cstddef>

namespace geored::serve {

class LatencyHistogram {
 public:
  /// Quarter-octave resolution: 4 sub-buckets per power of two.
  static constexpr std::size_t kSubBuckets = 4;
  /// Values below 2^kMinExponent ms (~0.98 us) land in the underflow bucket.
  static constexpr int kMinExponent = -10;
  /// Values at or above 2^kMaxExponent ms (~35 min) land in the overflow
  /// bucket; a simulated latency that large is a modeling bug, not a tail.
  static constexpr int kMaxExponent = 21;
  /// Underflow + quarter-octaves + overflow.
  static constexpr std::size_t kBuckets =
      2 + static_cast<std::size_t>(kMaxExponent - kMinExponent) * kSubBuckets;

  /// Bucket index of a latency value. Non-positive values (and NaN, which
  /// fails every comparison) go to the underflow bucket.
  static std::size_t bucket_index(double value_ms) {
    if (!(value_ms > 0.0)) return 0;
    // Overflow (including +inf, where frexp's exponent is unspecified)
    // before frexp; the threshold is an exact power of two.
    if (value_ms >= std::ldexp(1.0, kMaxExponent)) return kBuckets - 1;
    int exponent = 0;
    // frexp: value = m * 2^exponent with m in [0.5, 1) — exact, no rounding.
    const double mantissa = std::frexp(value_ms, &exponent);
    const int octave = exponent - 1;  // value = (2 * m) * 2^octave, 2m in [1, 2)
    if (octave < kMinExponent) return 0;
    if (octave >= kMaxExponent) return kBuckets - 1;
    const auto sub = static_cast<std::size_t>((2.0 * mantissa - 1.0) *
                                              static_cast<double>(kSubBuckets));
    return 1 + static_cast<std::size_t>(octave - kMinExponent) * kSubBuckets + sub;
  }

  /// Inclusive lower edge of a bucket: 0 for underflow, the exact dyadic
  /// edge otherwise. This is the value quantile() reports for the bucket.
  static double bucket_floor(std::size_t bucket) {
    if (bucket == 0) return 0.0;
    if (bucket >= kBuckets - 1) return std::ldexp(1.0, kMaxExponent);
    const std::size_t i = bucket - 1;
    const int octave = kMinExponent + static_cast<int>(i / kSubBuckets);
    const auto sub = static_cast<double>(i % kSubBuckets);
    return std::ldexp(1.0 + sub / static_cast<double>(kSubBuckets), octave);
  }

  void record(double value_ms) {
    ++counts_[bucket_index(value_ms)];
    ++total_;
    sum_ms_ += value_ms;
  }

  /// Bucketwise addition; quantiles of the merged histogram equal those of
  /// a single histogram fed both sample streams.
  void merge(const LatencyHistogram& other) {
    for (std::size_t b = 0; b < kBuckets; ++b) counts_[b] += other.counts_[b];
    total_ += other.total_;
    sum_ms_ += other.sum_ms_;
  }

  void reset() {
    counts_.fill(0);
    total_ = 0;
    sum_ms_ = 0.0;
  }

  std::uint64_t total() const { return total_; }
  std::uint64_t bucket_count(std::size_t bucket) const { return counts_[bucket]; }

  /// Exact arithmetic mean of the recorded values (not bucket-quantized;
  /// summed in record order, so deterministic for a deterministic feed).
  double mean_ms() const {
    return total_ > 0 ? sum_ms_ / static_cast<double>(total_) : 0.0;
  }

  /// The floor of the bucket holding the sample of rank ceil(q * total)
  /// (1-based, q in [0,1]); 0 when empty. Integer rank selection over exact
  /// edges: byte-stable, and merge-invariant by construction.
  double quantile(double q) const {
    if (total_ == 0) return 0.0;
    auto rank = static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total_)));
    if (rank < 1) rank = 1;
    if (rank > total_) rank = total_;
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      seen += counts_[b];
      if (seen >= rank) return bucket_floor(b);
    }
    return bucket_floor(kBuckets - 1);
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_ = 0;
  double sum_ms_ = 0.0;
};

}  // namespace geored::serve
