// Frozen scalar reference for the request router.
//
// This is the Point-loop router the SoA/SIMD RequestRouter replaced,
// retained verbatim as the correctness baseline: the serve_route bench case
// and the property tests drive both routers through identical request
// streams and require byte-identical decisions, counters, and histogram
// buckets. Do not optimize this file — its value is being the slow,
// obviously correct arbiter. Semantics match request_router.h exactly:
// nearest up replica by squared coordinate distance with strict-`<`
// first-winner ties over an ascending-NodeId scan, bounded virtual-time
// FIFO queues, spill-to-second-nearest or reject on a full queue.
#pragma once

#include <cstddef>
#include <set>
#include <vector>

#include "common/point.h"
#include "serve/request_router.h"

namespace geored::serve {

class ScalarRouter {
 public:
  explicit ScalarRouter(ServeConfig config);

  void set_replicas(const std::vector<ReplicaSpec>& replicas);
  void set_down(const std::set<topo::NodeId>& down);

  RouteDecision route(const Point& query, double now_ms);

  double complete(const RouteDecision& decision, double rtt_ms);

  const LatencyHistogram& histogram() const { return histogram_; }
  const RequestRouter::Stats& stats() const { return stats_; }

  void reset_epoch();

 private:
  struct Replica {
    topo::NodeId node = 0;
    Point coords;
    bool down = false;
    std::vector<double> departures;  ///< resident departure times, FIFO order
    double last_depart_ms = 0.0;
  };

  std::size_t prune(Replica& replica, double now_ms) const;
  double enqueue(Replica& replica, double now_ms);

  ServeConfig config_;
  std::vector<Replica> replicas_;  ///< ascending NodeId
  LatencyHistogram histogram_;
  RequestRouter::Stats stats_;
};

}  // namespace geored::serve
