// RequestRouter: the read-path data plane in front of the replicated store.
//
// Placement quality has so far only been an objective value; the router
// closes the loop by serving individual requests. Each request resolves to
// the nearest *up* replica in coordinate space (the paper's nearest-replica
// access model) through the same SoA distance kernels the placement hot
// paths use — per query via PointSet::nearest2_of, batched via
// simd::nearest2_batch, which is bit-identical to the scalar scan at every
// SIMD level — and then passes admission control in front of a bounded
// per-replica FIFO queue:
//
//   * Each replica serves one request every service_ms on a deterministic
//     virtual-time model: a request arriving at `now` departs at
//     max(now, previous departure) + service_ms, and its queue wait is
//     max(0, previous departure - now).
//   * A replica whose queue holds queue_cap resident requests is full.
//     Policy kSpill retries the second-nearest up replica; kReject (and a
//     full spill target) drops the request. Admission therefore never
//     exceeds queue_cap at any replica — the property tests' invariant.
//   * Client-observed latency = network RTT (supplied by the caller, who
//     owns the topology) + queue wait + service time, recorded into a
//     byte-stable LatencyHistogram for p50/p99/p999 per epoch.
//
// Determinism contract: routing and admission are pure functions of the
// replica set, the down set, and the (query, now) sequence — no wall clock,
// no RNG, no iteration over unordered containers. Ties in the nearest scan
// go to the lowest NodeId (the up panel is sorted ascending by node and the
// scan takes the first strict-`<` winner). route_batch reproduces a route()
// loop bit for bit; tests/serve pins both against the frozen Point-loop
// reference in router_scalar.h.
//
// The router is single-threaded like every geored component; `now_ms` must
// be non-decreasing across calls (simulator event order provides this).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <set>
#include <vector>

#include "common/point.h"
#include "common/point_set.h"
#include "serve/latency_histogram.h"
#include "topology/topology.h"

namespace geored::serve {

struct ServeConfig {
  /// Virtual service time per request at a replica (one request at a time).
  double service_ms = 0.05;
  /// Maximum resident requests per replica (queued + in service).
  std::size_t queue_cap = 64;

  enum class Policy {
    kReject,  ///< full primary queue rejects the request
    kSpill,   ///< full primary queue retries the second-nearest up replica
  };
  Policy policy = Policy::kSpill;
};

/// One replica the router may serve from: a data center and its network
/// coordinates (the summary-space position replica selection runs in).
struct ReplicaSpec {
  topo::NodeId node = 0;
  Point coords;
};

/// What the router decided for one request.
struct RouteDecision {
  enum class Outcome : std::uint8_t {
    kLost,      ///< no up replica exists
    kRejected,  ///< admission failed (primary full; spill full or disabled)
    kAdmitted,  ///< served by the nearest up replica
    kSpilled,   ///< primary full, served by the second-nearest up replica
  };

  Outcome outcome = Outcome::kLost;
  topo::NodeId replica = 0;  ///< serving replica (admitted/spilled only)
  double wait_ms = 0.0;      ///< queue wait at the serving replica
  /// Squared coordinate distance to the serving replica — the coordinate-
  /// space RTT proxy callers without a topology (bench) feed to complete().
  double dist_sq = std::numeric_limits<double>::infinity();

  bool admitted() const {
    return outcome == Outcome::kAdmitted || outcome == Outcome::kSpilled;
  }
};

class RequestRouter {
 public:
  struct Stats {
    std::uint64_t requests = 0;  ///< admitted + rejected + lost
    std::uint64_t admitted = 0;  ///< served (includes spilled)
    std::uint64_t rejected = 0;
    std::uint64_t spilled = 0;
    std::uint64_t lost = 0;
  };

  explicit RequestRouter(ServeConfig config);

  /// Replaces the replica set (an adopted placement). Queue state carries
  /// over for replicas present in both the old and new set — an epoch
  /// boundary does not drain retained replicas — and is dropped for removed
  /// ones. Nodes must be distinct; coordinates must share one dimension.
  void set_replicas(const std::vector<ReplicaSpec>& replicas);

  /// Marks the given data centers down: they leave the routing panel until
  /// a later set_down call clears them. Queue state of a down replica is
  /// retained (it resumes draining on the virtual timeline when back up).
  /// Cheap when the down set is unchanged from the previous call.
  void set_down(const std::set<topo::NodeId>& down);

  std::size_t replica_count() const { return replicas_.size(); }
  std::size_t up_count() const { return up_panel_.size(); }

  /// Routes one request at virtual time `now_ms`. `query` holds the
  /// client's coordinates (same dimension as the replica specs). Updates
  /// queues and counters; latency is recorded by the complete() that
  /// follows an admitted decision.
  RouteDecision route(const double* query, double now_ms);
  RouteDecision route(const Point& query, double now_ms) {
    return route(query.values().data(), now_ms);
  }

  /// Routes `count` requests in one call: queries are rows of `points`
  /// (row indices[j], or row j when indices is null), arriving at
  /// non-decreasing nows_ms[j]. The nearest-up scan runs through the
  /// batched SIMD kernel; decisions are written to out[j] and are
  /// bit-identical to calling route() per query in order.
  void route_batch(const PointSet& points, const std::size_t* indices, std::size_t count,
                   const double* nows_ms, RouteDecision* out);

  /// Completes an admitted request with the caller's measured network RTT:
  /// records rtt + wait + service into the histogram and returns that
  /// latency. Must not be called for lost/rejected decisions.
  double complete(const RouteDecision& decision, double rtt_ms);

  const LatencyHistogram& histogram() const { return histogram_; }
  const Stats& stats() const { return stats_; }
  const ServeConfig& config() const { return config_; }

  /// Requests resident at `node`'s queue at virtual time `now_ms` (0 for a
  /// node the router does not hold). Observational; does not prune.
  std::size_t resident_at(topo::NodeId node, double now_ms) const;

  /// Clears the epoch accumulators (stats + histogram). Queue state
  /// persists: traffic in flight at an epoch boundary is still in flight.
  void reset_epoch();

 private:
  /// Bounded FIFO of departure times, ring-buffered at queue_cap slots —
  /// residency can never exceed the cap, so admission is allocation-free.
  struct Queue {
    std::vector<double> ring;
    std::size_t head = 0;
    std::size_t count = 0;
    double last_depart_ms = 0.0;
  };

  struct Replica {
    topo::NodeId node = 0;
    Queue queue;
  };

  void rebuild_panel();
  /// Prunes departures at or before now; returns resident count.
  std::size_t prune(Queue& queue, double now_ms) const;
  /// Admission at panel row `primary` (spilling per policy); fills `out`.
  void admit(std::size_t primary_row, double primary_dist_sq, const double* query,
             double now_ms, RouteDecision& out);
  /// Pushes a request into `replica`'s queue; returns the queue wait.
  double enqueue(Replica& replica, double now_ms);

  ServeConfig config_;
  std::vector<Replica> replicas_;       ///< ascending NodeId
  PointSet coords_;                     ///< row i = replicas_[i] coordinates
  std::vector<topo::NodeId> down_;      ///< sorted; mirrors the last set_down
  PointSet up_panel_;                   ///< up-replica coordinates, ascending NodeId
  std::vector<std::size_t> up_slots_;   ///< panel row -> replicas_ index

  LatencyHistogram histogram_;
  Stats stats_;

  // route_batch scratch, reused across calls (hot path: no per-batch
  // allocation once warmed).
  std::vector<std::size_t> assign_;
  std::vector<double> best_sq_;
  std::vector<double> second_sq_;
};

}  // namespace geored::serve
