#include "serve/router_scalar.h"

#include <algorithm>
#include <limits>

#include "common/ensure.h"

namespace geored::serve {

ScalarRouter::ScalarRouter(ServeConfig config) : config_(config) {
  GEORED_ENSURE(config_.service_ms > 0.0, "service_ms must be positive");
  GEORED_ENSURE(config_.queue_cap >= 1, "queue_cap must be at least 1");
}

void ScalarRouter::set_replicas(const std::vector<ReplicaSpec>& replicas) {
  std::vector<Replica> next;
  next.reserve(replicas.size());
  std::vector<std::size_t> order(replicas.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return replicas[a].node < replicas[b].node;
  });
  for (const std::size_t i : order) {
    const ReplicaSpec& spec = replicas[i];
    GEORED_ENSURE(next.empty() || next.back().node < spec.node,
                  "duplicate replica node in set_replicas");
    Replica replica;
    replica.node = spec.node;
    replica.coords = spec.coords;
    for (auto& old : replicas_) {
      if (old.node == spec.node) {
        replica.departures = std::move(old.departures);
        replica.last_depart_ms = old.last_depart_ms;
        break;
      }
    }
    next.push_back(std::move(replica));
  }
  replicas_ = std::move(next);
}

void ScalarRouter::set_down(const std::set<topo::NodeId>& down) {
  for (auto& replica : replicas_) replica.down = down.contains(replica.node);
}

std::size_t ScalarRouter::prune(Replica& replica, double now_ms) const {
  auto& departures = replica.departures;
  std::size_t departed = 0;
  while (departed < departures.size() && departures[departed] <= now_ms) ++departed;
  departures.erase(departures.begin(),
                   departures.begin() + static_cast<std::ptrdiff_t>(departed));
  return departures.size();
}

double ScalarRouter::enqueue(Replica& replica, double now_ms) {
  const double wait_ms = std::max(0.0, replica.last_depart_ms - now_ms);
  const double depart_ms = now_ms + wait_ms + config_.service_ms;
  replica.departures.push_back(depart_ms);
  replica.last_depart_ms = depart_ms;
  return wait_ms;
}

RouteDecision ScalarRouter::route(const Point& query, double now_ms) {
  ++stats_.requests;
  RouteDecision decision;

  // Nearest up replica: the straightforward Point loop in ascending NodeId
  // order, strict-`<` first winner.
  std::size_t best = replicas_.size();
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (replicas_[i].down) continue;
    const double dist = query.distance_squared_to(replicas_[i].coords);
    if (dist < best_dist) {
      best_dist = dist;
      best = i;
    }
  }
  if (best == replicas_.size()) {
    ++stats_.lost;
    return decision;
  }

  Replica& primary = replicas_[best];
  if (prune(primary, now_ms) < config_.queue_cap) {
    decision.outcome = RouteDecision::Outcome::kAdmitted;
    decision.replica = primary.node;
    decision.wait_ms = enqueue(primary, now_ms);
    decision.dist_sq = best_dist;
    ++stats_.admitted;
    return decision;
  }

  if (config_.policy == ServeConfig::Policy::kSpill) {
    std::size_t spill = replicas_.size();
    double spill_dist = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      if (replicas_[i].down || i == best) continue;
      const double dist = query.distance_squared_to(replicas_[i].coords);
      if (dist < spill_dist) {
        spill_dist = dist;
        spill = i;
      }
    }
    if (spill < replicas_.size()) {
      Replica& target = replicas_[spill];
      if (prune(target, now_ms) < config_.queue_cap) {
        decision.outcome = RouteDecision::Outcome::kSpilled;
        decision.replica = target.node;
        decision.wait_ms = enqueue(target, now_ms);
        decision.dist_sq = spill_dist;
        ++stats_.admitted;
        ++stats_.spilled;
        return decision;
      }
    }
  }

  decision.outcome = RouteDecision::Outcome::kRejected;
  ++stats_.rejected;
  return decision;
}

double ScalarRouter::complete(const RouteDecision& decision, double rtt_ms) {
  GEORED_ENSURE(decision.admitted(), "complete() on a request that was not admitted");
  const double latency_ms = rtt_ms + decision.wait_ms + config_.service_ms;
  histogram_.record(latency_ms);
  return latency_ms;
}

void ScalarRouter::reset_epoch() {
  histogram_.reset();
  stats_ = RequestRouter::Stats{};
}

}  // namespace geored::serve
