#include "serve/request_router.h"

#include <algorithm>

#include "common/ensure.h"
#include "common/point_set_simd.h"

namespace geored::serve {

RequestRouter::RequestRouter(ServeConfig config) : config_(config) {
  GEORED_ENSURE(config_.service_ms > 0.0, "service_ms must be positive");
  GEORED_ENSURE(config_.queue_cap >= 1, "queue_cap must be at least 1");
}

void RequestRouter::set_replicas(const std::vector<ReplicaSpec>& replicas) {
  // Placement adoption is a per-epoch path, not per-request.
  std::vector<Replica> next;  // lint: alloc-ok
  next.reserve(replicas.size());

  // Ascending-NodeId order is the routing tie-break: the panel scan takes
  // the first strict-`<` winner, so equal distances resolve to the lowest
  // node id. Sort a copy of the spec order here.
  std::vector<std::size_t> order(replicas.size());  // lint: alloc-ok
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return replicas[a].node < replicas[b].node;
  });

  PointSet coords;
  for (const std::size_t i : order) {
    const ReplicaSpec& spec = replicas[i];
    GEORED_ENSURE(next.empty() || next.back().node < spec.node,
                  "duplicate replica node in set_replicas");
    Replica replica;
    replica.node = spec.node;
    // Carry queue state across placement changes for retained replicas:
    // requests in flight at an epoch boundary are still in flight.
    const auto old = std::lower_bound(
        replicas_.begin(), replicas_.end(), spec.node,
        [](const Replica& r, topo::NodeId node) { return r.node < node; });
    if (old != replicas_.end() && old->node == spec.node) {
      replica.queue = std::move(old->queue);
    } else {
      replica.queue.ring.assign(config_.queue_cap, 0.0);
    }
    next.push_back(std::move(replica));
    coords.push_back(spec.coords);
  }
  replicas_ = std::move(next);
  coords_ = std::move(coords);
  rebuild_panel();
}

void RequestRouter::set_down(const std::set<topo::NodeId>& down) {
  // The set is tiny (outage windows); the compare makes the per-access
  // call free whenever the down set is unchanged.
  if (down.size() == down_.size() &&
      std::equal(down.begin(), down.end(), down_.begin())) {
    return;
  }
  down_.assign(down.begin(), down.end());
  rebuild_panel();
}

void RequestRouter::rebuild_panel() {
  up_panel_ = PointSet(coords_.dim());
  up_slots_.clear();
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (std::binary_search(down_.begin(), down_.end(), replicas_[i].node)) continue;
    up_panel_.push_back_row(coords_.row(i), coords_.dim());
    up_slots_.push_back(i);
  }
}

std::size_t RequestRouter::prune(Queue& queue, double now_ms) const {
  const std::size_t cap = config_.queue_cap;
  while (queue.count > 0 && queue.ring[queue.head] <= now_ms) {
    queue.head = (queue.head + 1) % cap;
    --queue.count;
  }
  return queue.count;
}

double RequestRouter::enqueue(Replica& replica, double now_ms) {
  Queue& queue = replica.queue;
  const double wait_ms = std::max(0.0, queue.last_depart_ms - now_ms);
  const double depart_ms = now_ms + wait_ms + config_.service_ms;
  queue.ring[(queue.head + queue.count) % config_.queue_cap] = depart_ms;
  ++queue.count;
  queue.last_depart_ms = depart_ms;
  return wait_ms;
}

void RequestRouter::admit(std::size_t primary_row, double primary_dist_sq,
                          const double* query, double now_ms, RouteDecision& out) {
  Replica& primary = replicas_[up_slots_[primary_row]];
  if (prune(primary.queue, now_ms) < config_.queue_cap) {
    out.outcome = RouteDecision::Outcome::kAdmitted;
    out.replica = primary.node;
    out.wait_ms = enqueue(primary, now_ms);
    out.dist_sq = primary_dist_sq;
    ++stats_.admitted;
    return;
  }
  if (config_.policy == ServeConfig::Policy::kSpill && up_panel_.size() >= 2) {
    // Second-nearest up replica: a lazy scalar re-scan excluding the
    // primary row. The batched kernel reports the runner-up *distance* but
    // not its index; recovering it here only on the (rare) full-queue path
    // keeps the common case on the pure argmin kernels. Same strict-`<`
    // first-winner order as the primary scan.
    std::size_t spill_row = primary_row;
    double spill_dist = std::numeric_limits<double>::infinity();
    const std::size_t rows = up_panel_.size();
    for (std::size_t r = 0; r < rows; ++r) {
      if (r == primary_row) continue;
      const double dist = up_panel_.distance_squared(r, query);
      const bool better = dist < spill_dist;
      spill_row = better ? r : spill_row;
      spill_dist = better ? dist : spill_dist;
    }
    Replica& spill = replicas_[up_slots_[spill_row]];
    if (prune(spill.queue, now_ms) < config_.queue_cap) {
      out.outcome = RouteDecision::Outcome::kSpilled;
      out.replica = spill.node;
      out.wait_ms = enqueue(spill, now_ms);
      out.dist_sq = spill_dist;
      ++stats_.admitted;
      ++stats_.spilled;
      return;
    }
  }
  out.outcome = RouteDecision::Outcome::kRejected;
  ++stats_.rejected;
}

RouteDecision RequestRouter::route(const double* query, double now_ms) {
  ++stats_.requests;
  RouteDecision decision;
  if (up_panel_.empty()) {
    ++stats_.lost;
    return decision;
  }
  double best_sq = 0.0;
  const std::size_t row = up_panel_.nearest2_of(query, &best_sq, nullptr);
  admit(row, best_sq, query, now_ms, decision);
  return decision;
}

void RequestRouter::route_batch(const PointSet& points, const std::size_t* indices,
                                std::size_t count, const double* nows_ms,
                                RouteDecision* out) {
  if (count == 0) return;
  if (up_panel_.empty()) {
    for (std::size_t j = 0; j < count; ++j) {
      ++stats_.requests;
      ++stats_.lost;
      out[j] = RouteDecision{};
    }
    return;
  }
  GEORED_ENSURE(points.dim() == up_panel_.dim(),
                "query dimension mismatch in route_batch");
  assign_.resize(count);
  best_sq_.resize(count);
  second_sq_.resize(count);
  // One batched nearest-two scan for the whole chunk (one query per SIMD
  // lane, bit-identical to the scalar nearest2_of at every level), then the
  // sequential admission pass in arrival order — queue decisions depend on
  // earlier admissions, so that part is inherently ordered.
  simd::nearest2_batch(points.row(0), points.dim(), indices, count, up_panel_.row(0),
                       up_panel_.size(), assign_.data(), best_sq_.data(),
                       second_sq_.data(), simd::active_level());
  for (std::size_t j = 0; j < count; ++j) {
    const double* query = points.row(indices != nullptr ? indices[j] : j);
    ++stats_.requests;
    out[j] = RouteDecision{};
    admit(assign_[j], best_sq_[j], query, nows_ms[j], out[j]);
  }
}

double RequestRouter::complete(const RouteDecision& decision, double rtt_ms) {
  GEORED_ENSURE(decision.admitted(), "complete() on a request that was not admitted");
  const double latency_ms = rtt_ms + decision.wait_ms + config_.service_ms;
  histogram_.record(latency_ms);
  return latency_ms;
}

// Observational: an unknown node reads as an empty queue by design.
std::size_t RequestRouter::resident_at(topo::NodeId node, double now_ms) const {  // lint: no-ensure
  const auto it = std::lower_bound(
      replicas_.begin(), replicas_.end(), node,
      [](const Replica& r, topo::NodeId id) { return r.node < id; });
  if (it == replicas_.end() || it->node != node) return 0;
  const Queue& queue = it->queue;
  std::size_t resident = 0;
  for (std::size_t i = 0; i < queue.count; ++i) {
    if (queue.ring[(queue.head + i) % config_.queue_cap] > now_ms) ++resident;
  }
  return resident;
}

void RequestRouter::reset_epoch() {
  histogram_.reset();
  stats_ = Stats{};
}

}  // namespace geored::serve
