#include "placement/spread.h"

#include <algorithm>
#include <limits>

#include "common/ensure.h"

namespace geored::place {

namespace {

const CandidateInfo& info_of(const std::vector<CandidateInfo>& candidates,
                             topo::NodeId node) {
  const auto it = std::find_if(candidates.begin(), candidates.end(),
                               [node](const CandidateInfo& c) { return c.node == node; });
  GEORED_CHECK(it != candidates.end(), "placement node missing from candidates");
  return *it;
}

}  // namespace

double min_pairwise_spread(const Placement& placement,
                           const std::vector<CandidateInfo>& candidates) {
  double min_spread = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < placement.size(); ++i) {
    for (std::size_t j = i + 1; j < placement.size(); ++j) {
      min_spread = std::min(min_spread,
                            info_of(candidates, placement[i])
                                .coords.distance_to(info_of(candidates, placement[j]).coords));
    }
  }
  return min_spread;
}

SpreadConstrainedPlacement::SpreadConstrainedPlacement(
    std::unique_ptr<PlacementStrategy> inner, SpreadConfig config)
    : inner_(std::move(inner)), config_(config) {
  GEORED_ENSURE(inner_ != nullptr, "spread decorator needs an inner strategy");
  GEORED_ENSURE(config_.min_spread_ms >= 0.0, "min_spread_ms must be non-negative");
}

Placement SpreadConstrainedPlacement::place(const PlacementInput& input) const {
  const Placement proposed = inner_->place(input);

  Placement repaired;
  repaired.reserve(proposed.size());
  std::vector<bool> used(input.candidates.size(), false);
  const auto candidate_index = [&](topo::NodeId node) {
    for (std::size_t c = 0; c < input.candidates.size(); ++c) {
      if (input.candidates[c].node == node) return c;
    }
    throw InternalError("placement node missing from candidates");
  };
  for (const auto node : proposed) used[candidate_index(node)] = true;

  const auto far_enough = [&](const Point& coords) {
    for (const auto accepted : repaired) {
      if (coords.distance_to(info_of(input.candidates, accepted).coords) <
          config_.min_spread_ms) {
        return false;
      }
    }
    return true;
  };

  for (const auto node : proposed) {
    const Point& coords = info_of(input.candidates, node).coords;
    if (far_enough(coords)) {
      repaired.push_back(node);
      continue;
    }
    // Violation: swap for the nearest unused candidate that honours the
    // spread against everything accepted so far.
    std::ptrdiff_t best = -1;
    double best_dist = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < input.candidates.size(); ++c) {
      if (used[c]) continue;
      if (!far_enough(input.candidates[c].coords)) continue;
      const double dist = coords.distance_squared_to(input.candidates[c].coords);
      if (dist < best_dist) {
        best_dist = dist;
        best = static_cast<std::ptrdiff_t>(c);
      }
    }
    if (best < 0) {
      repaired.push_back(node);  // infeasible: keep serving from the original
      continue;
    }
    used[candidate_index(node)] = false;
    used[static_cast<std::size_t>(best)] = true;
    repaired.push_back(input.candidates[static_cast<std::size_t>(best)].node);
  }
  return repaired;
}

}  // namespace geored::place
