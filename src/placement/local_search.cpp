#include "placement/local_search.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "common/ensure.h"
#include "common/thread_pool.h"
#include "placement/latency_matrix.h"
#include "placement/online_clustering.h"
#include "placement/random_placement.h"

namespace geored::place {

LocalSearchPlacement::LocalSearchPlacement(std::unique_ptr<PlacementStrategy> seed_strategy,
                                           LocalSearchConfig config)
    : seed_(seed_strategy ? std::move(seed_strategy)
                          : std::make_unique<OnlineClusteringPlacement>()),
      config_(config) {
  GEORED_ENSURE(config_.max_rounds >= 1, "local search needs at least one round");
  GEORED_ENSURE(config_.tolerance >= 0.0, "tolerance must be non-negative");
}

std::string LocalSearchPlacement::name() const { return seed_->name() + " +local-search"; }

Placement LocalSearchPlacement::place(const PlacementInput& input) const {
  GEORED_ENSURE(!input.candidates.empty(), "no candidate data centers");
  Placement placement = seed_->place(input);
  if (input.clients.empty() || placement.size() == input.candidates.size()) {
    return placement;  // nothing to optimize against, or no free candidates
  }

  // Precompute estimated latencies candidate x client once.
  const std::size_t n_cand = input.candidates.size();
  const std::size_t n_client = input.clients.size();
  const LatencyMatrix latency = build_latency_matrix(input.candidates, input.clients);
  const std::vector<double> weight = access_weights(input.clients);

  std::unordered_map<topo::NodeId, std::size_t> candidate_index;
  candidate_index.reserve(n_cand);
  for (std::size_t c = 0; c < n_cand; ++c) candidate_index.emplace(input.candidates[c].node, c);

  std::vector<std::size_t> chosen;
  chosen.reserve(placement.size());
  std::vector<bool> in_placement(n_cand, false);
  for (const auto node : placement) {
    const auto it = candidate_index.find(node);
    if (it == candidate_index.end()) {
      throw InternalError("placement node missing from candidates");
    }
    chosen.push_back(it->second);
    in_placement[chosen.back()] = true;
  }
  const std::size_t slots = chosen.size();

  // Incremental objective state: each client's closest and second-closest
  // chosen replica. Removing a slot then adding candidate c costs one pass:
  //   base(u, slot) = (closest is slot) ? second-closest : closest
  //   total(slot -> c) = sum_u min(base(u, slot), latency[c][u]) * w[u]
  // Minima are exact in floating point, so these totals are bit-identical
  // to re-scanning all k members — the classical local-search delta rule,
  // O(clients) per swap instead of O(clients * k).
  std::vector<double> best1(n_client), best2(n_client);
  std::vector<std::size_t> best1_slot(n_client);
  const auto recompute_best = [&] {
    parallel_for(
        n_client,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t u = begin; u < end; ++u) {
            double b1 = std::numeric_limits<double>::infinity();
            double b2 = std::numeric_limits<double>::infinity();
            std::size_t s1 = 0;
            for (std::size_t slot = 0; slot < slots; ++slot) {
              const double d = latency.row(chosen[slot])[u];
              if (d < b1) {
                b2 = b1;
                b1 = d;
                s1 = slot;
              } else if (d < b2) {
                b2 = d;
              }
            }
            best1[u] = b1;
            best2[u] = b2;
            best1_slot[u] = s1;
          }
        },
        min_parallel_rows(slots));
  };

  recompute_best();
  double current = 0.0;
  for (std::size_t u = 0; u < n_client; ++u) current += best1[u] * weight[u];

  std::vector<double> swap_totals(n_cand, std::numeric_limits<double>::infinity());
  for (std::size_t round = 0; round < config_.max_rounds; ++round) {
    double best_delta = 0.0;
    std::size_t best_slot = 0, best_replacement = 0;
    bool improved = false;
    for (std::size_t slot = 0; slot < slots; ++slot) {
      parallel_for(
          n_cand,
          [&](std::size_t begin, std::size_t end) {
            for (std::size_t c = begin; c < end; ++c) {
              if (in_placement[c]) continue;
              const double* row = latency.row(c);
              double total = 0.0;
              for (std::size_t u = 0; u < n_client; ++u) {
                const double base = best1_slot[u] == slot ? best2[u] : best1[u];
                total += std::min(base, row[u]) * weight[u];
              }
              swap_totals[c] = total;
            }
          },
          min_parallel_rows(n_client));
      for (std::size_t c = 0; c < n_cand; ++c) {
        if (in_placement[c]) continue;
        const double delta = current - swap_totals[c];
        if (delta > best_delta + config_.tolerance * std::max(1.0, current)) {
          best_delta = delta;
          best_slot = slot;
          best_replacement = c;
          improved = true;
        }
      }
    }
    if (!improved) break;
    in_placement[chosen[best_slot]] = false;
    in_placement[best_replacement] = true;
    chosen[best_slot] = best_replacement;
    current -= best_delta;
    recompute_best();
  }

  Placement result;
  result.reserve(chosen.size());
  for (const auto c : chosen) result.push_back(input.candidates[c].node);
  return result;
}

}  // namespace geored::place
