#include "placement/local_search.h"

#include <algorithm>
#include <limits>

#include "common/ensure.h"
#include "placement/online_clustering.h"
#include "placement/random_placement.h"

namespace geored::place {

LocalSearchPlacement::LocalSearchPlacement(std::unique_ptr<PlacementStrategy> seed_strategy,
                                           LocalSearchConfig config)
    : seed_(seed_strategy ? std::move(seed_strategy)
                          : std::make_unique<OnlineClusteringPlacement>()),
      config_(config) {
  GEORED_ENSURE(config_.max_rounds >= 1, "local search needs at least one round");
  GEORED_ENSURE(config_.tolerance >= 0.0, "tolerance must be non-negative");
}

std::string LocalSearchPlacement::name() const { return seed_->name() + " +local-search"; }

Placement LocalSearchPlacement::place(const PlacementInput& input) const {
  GEORED_ENSURE(!input.candidates.empty(), "no candidate data centers");
  Placement placement = seed_->place(input);
  if (input.clients.empty() || placement.size() == input.candidates.size()) {
    return placement;  // nothing to optimize against, or no free candidates
  }

  // Precompute estimated latencies candidate x client once.
  const std::size_t n_cand = input.candidates.size();
  const std::size_t n_client = input.clients.size();
  std::vector<std::vector<double>> latency(n_cand, std::vector<double>(n_client));
  std::vector<double> weight(n_client);
  for (std::size_t c = 0; c < n_cand; ++c) {
    for (std::size_t u = 0; u < n_client; ++u) {
      latency[c][u] = input.candidates[c].coords.distance_to(input.clients[u].coords);
    }
  }
  for (std::size_t u = 0; u < n_client; ++u) {
    weight[u] = static_cast<double>(input.clients[u].access_count);
  }
  const auto candidate_index = [&](topo::NodeId node) {
    for (std::size_t c = 0; c < n_cand; ++c) {
      if (input.candidates[c].node == node) return c;
    }
    throw InternalError("placement node missing from candidates");
  };

  std::vector<std::size_t> chosen;
  chosen.reserve(placement.size());
  std::vector<bool> in_placement(n_cand, false);
  for (const auto node : placement) {
    chosen.push_back(candidate_index(node));
    in_placement[chosen.back()] = true;
  }

  const auto total_delay = [&](const std::vector<std::size_t>& members) {
    double total = 0.0;
    for (std::size_t u = 0; u < n_client; ++u) {
      double best = std::numeric_limits<double>::infinity();
      for (const auto c : members) best = std::min(best, latency[c][u]);
      total += best * weight[u];
    }
    return total;
  };

  double current = total_delay(chosen);
  for (std::size_t round = 0; round < config_.max_rounds; ++round) {
    double best_delta = 0.0;
    std::size_t best_slot = 0, best_replacement = 0;
    bool improved = false;
    for (std::size_t slot = 0; slot < chosen.size(); ++slot) {
      const std::size_t original = chosen[slot];
      for (std::size_t c = 0; c < n_cand; ++c) {
        if (in_placement[c]) continue;
        chosen[slot] = c;
        const double candidate_total = total_delay(chosen);
        const double delta = current - candidate_total;
        if (delta > best_delta + config_.tolerance * std::max(1.0, current)) {
          best_delta = delta;
          best_slot = slot;
          best_replacement = c;
          improved = true;
        }
      }
      chosen[slot] = original;
    }
    if (!improved) break;
    in_placement[chosen[best_slot]] = false;
    in_placement[best_replacement] = true;
    chosen[best_slot] = best_replacement;
    current -= best_delta;
  }

  Placement result;
  result.reserve(chosen.size());
  for (const auto c : chosen) result.push_back(input.candidates[c].node);
  return result;
}

}  // namespace geored::place
