// Objective evaluation for replica placements.
//
// The paper's objective (Section II-B): l(o) = sum_u min_{c in R} l(u,c),
// each client access served by the closest replica. `quorum` generalizes
// this to the q-th order statistic for the quorum-read extension: a client
// must reach its q closest replicas, so its perceived delay is the q-th
// smallest latency.
#pragma once

#include <vector>

#include "placement/types.h"

namespace geored::place {

/// Ground-truth total delay (ms, weighted by per-client access counts) of a
/// placement. Requires a non-empty placement and quorum <= placement size.
double true_total_delay(const topo::Topology& topology, const Placement& placement,
                        const std::vector<ClientRecord>& clients, std::size_t quorum = 1);

/// Ground-truth average per-access delay (true_total_delay / total accesses).
double true_average_delay(const topo::Topology& topology, const Placement& placement,
                          const std::vector<ClientRecord>& clients, std::size_t quorum = 1);

/// Coordinate-estimated total delay: distances in the embedding instead of
/// true RTTs. This is what scalable strategies can compute without probing.
double estimated_total_delay(const Placement& placement,
                             const std::vector<CandidateInfo>& candidates,
                             const std::vector<ClientRecord>& clients, std::size_t quorum = 1);

/// Pre-optimization scalar reference implementations of the two evaluators,
/// kept verbatim so the equivalence tests and bench/micro_perf.cpp can pin
/// the fast paths against them (byte-identical totals at one thread, 1e-9
/// relative agreement across thread counts). Same contracts as above.
double true_total_delay_scalar(const topo::Topology& topology, const Placement& placement,
                               const std::vector<ClientRecord>& clients,
                               std::size_t quorum = 1);
double estimated_total_delay_scalar(const Placement& placement,
                                    const std::vector<CandidateInfo>& candidates,
                                    const std::vector<ClientRecord>& clients,
                                    std::size_t quorum = 1);

/// Validates that a placement consists of distinct ids drawn from the
/// candidate set and has size min(k, #candidates). Throws on violation.
void validate_placement(const Placement& placement, const PlacementInput& input);

}  // namespace geored::place
