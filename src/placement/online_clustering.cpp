#include "placement/online_clustering.h"

#include "common/ensure.h"
#include "common/random.h"
#include "placement/assign.h"
#include "placement/random_placement.h"

namespace geored::place {

Placement OnlineClusteringPlacement::place(const PlacementInput& input) const {
  return place_detailed(input).placement;
}

OnlineClusteringDetails OnlineClusteringPlacement::place_detailed(
    const PlacementInput& input) const {
  GEORED_ENSURE(!input.candidates.empty(), "no candidate data centers");

  // Micro-clusters become weighted pseudo-points (Algorithm 1, line 2).
  std::vector<cluster::WeightedPoint> pseudo_points;
  pseudo_points.reserve(input.summaries.size());
  for (const auto& micro : input.summaries) {
    if (micro.count() == 0) continue;
    const double weight = config_.weigh_by_data_volume
                              ? micro.weight()
                              : static_cast<double>(micro.count());
    if (weight <= 0.0) continue;
    pseudo_points.push_back({micro.centroid(), weight});
  }
  if (pseudo_points.empty()) {
    // First epoch: no usage summaries exist yet.
    return {RandomPlacement().place(input), {}};
  }

  cluster::KMeansConfig config = config_.kmeans;
  config.k = std::min(input.k, input.candidates.size());
  Rng rng(input.seed);
  auto result = config_.use_scalar_solver
                    ? cluster::weighted_kmeans_scalar(pseudo_points, config, rng)
                    : cluster::weighted_kmeans(pseudo_points, config, rng);

  // Warm start: if the previous epoch's centroids explain today's data
  // nearly as well (within the tolerance), prefer them — placements stay
  // put unless the population actually moved.
  if (config_.warm_start_centroids.size() == config.k &&
      config_.warm_start_centroids.front().dim() ==
          pseudo_points.front().position.dim()) {
    auto warm = config_.use_scalar_solver
                    ? cluster::weighted_kmeans_from_scalar(
                          pseudo_points, config_.warm_start_centroids, config)
                    : cluster::weighted_kmeans_from(pseudo_points,
                                                    config_.warm_start_centroids, config);
    if (warm.objective <= result.objective * (1.0 + config_.warm_start_tolerance)) {
      result = std::move(warm);
    }
  }

  std::vector<double> mass(result.centroids.size(), 0.0);
  for (std::size_t i = 0; i < pseudo_points.size(); ++i) {
    mass[result.assignment[i]] += pseudo_points[i].weight;
  }
  OnlineClusteringDetails details;
  details.placement = assign_centroids_to_candidates(result.centroids, mass,
                                                     input.candidates, config.k, input.seed,
                                                     config_.load_aware ? &mass : nullptr);
  details.macro_centroids = std::move(result.centroids);
  return details;
}

}  // namespace geored::place
