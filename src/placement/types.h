// Shared types of the placement layer.
//
// A PlacementStrategy sees a PlacementInput describing what the system knows
// at decision time. Different strategies consume different fields — that
// asymmetry is the point of the paper's comparison:
//   random            : candidates only
//   online clustering : micro-cluster summaries + candidate coordinates
//   offline k-means   : every client's coordinates + candidate coordinates
//   greedy / hotzone  : every client's coordinates (related-work baselines)
//   optimal           : the ground-truth RTT matrix (impractical oracle)
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "cluster/microcluster.h"
#include "common/point.h"
#include "topology/topology.h"

namespace geored::place {

/// What a replica placement is: the chosen candidate data centers.
using Placement = std::vector<topo::NodeId>;

/// Per-client knowledge available to offline (non-summarizing) strategies.
struct ClientRecord {
  topo::NodeId client = 0;
  Point coords;                    ///< estimated network coordinates
  std::uint64_t access_count = 0;  ///< accesses in the analyzed period

  /// Data volume this client exchanged per access, normalized so 1.0 is one
  /// plain access (the unit `serve()`/`record_access()` default to). Callers
  /// that weight clients by traffic set this to the measured volume; leaving
  /// it untouched means "an ordinary access", never "no data".
  double data_weight = 1.0;
};

/// A candidate data center.
struct CandidateInfo {
  topo::NodeId node = 0;
  Point coords;  ///< estimated network coordinates
  /// Maximum client access weight this site may serve (load-aware extension;
  /// infinity = unconstrained, the paper's setting).
  double capacity = std::numeric_limits<double>::infinity();
};

struct PlacementInput {
  std::vector<CandidateInfo> candidates;
  std::size_t k = 3;  ///< target degree of replication

  /// Full per-client records (offline strategies).
  std::vector<ClientRecord> clients;

  /// Micro-cluster summaries collected from replica servers (online strategy).
  std::vector<cluster::MicroCluster> summaries;

  /// Ground truth; only the `optimal` oracle may read it.
  const topo::Topology* topology = nullptr;

  /// Number of replicas a client must reach (quorum extension; 1 = paper).
  std::size_t quorum = 1;

  /// Seed for any randomized choice inside a strategy.
  std::uint64_t seed = 0;
};

}  // namespace geored::place
