// The replica placement strategy interface and registry.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "placement/types.h"

namespace geored::place {

class PlacementStrategy {
 public:
  virtual ~PlacementStrategy() = default;

  /// Human-readable name used in reports (e.g. "online clustering").
  virtual std::string name() const = 0;

  /// Chooses min(k, #candidates) *distinct* candidate data centers.
  /// Implementations must be deterministic in (input, input.seed).
  virtual Placement place(const PlacementInput& input) const = 0;
};

/// The strategies compared in the paper plus related-work baselines.
enum class StrategyKind {
  kRandom,            ///< paper baseline 1
  kOfflineKMeans,     ///< paper baseline 2
  kOnlineClustering,  ///< the paper's contribution
  kOptimal,           ///< paper baseline 4 (exhaustive oracle)
  kGreedy,            ///< Qiu et al., INFOCOM'01
  kHotZone,           ///< Szymaniak et al., SAINT'05
  kLocalSearch,       ///< Teitz-Bart vertex substitution over online clustering
};

/// Factory for a default-configured strategy of the given kind.
std::unique_ptr<PlacementStrategy> make_strategy(StrategyKind kind);

/// String-keyed registry: as make_strategy(StrategyKind) but addressed by
/// name, so tools and configs select strategies without touching the enum.
/// Canonical names (in StrategyKind order): "random", "offline_kmeans",
/// "online", "optimal", "greedy", "hotzone", "local_search"; the CLI
/// spellings "offline" and "local-search" are accepted as aliases. Throws
/// std::invalid_argument for unknown names.
std::unique_ptr<PlacementStrategy> make_strategy(const std::string& name);

/// Maps a registry name (or alias) to its StrategyKind; throws
/// std::invalid_argument for unknown names.
StrategyKind strategy_kind(const std::string& name);

/// The canonical registry names, in StrategyKind order.
std::vector<std::string> strategy_names();

/// Name used in reports for a strategy kind (matches PlacementStrategy::name).
std::string strategy_name(StrategyKind kind);

}  // namespace geored::place
