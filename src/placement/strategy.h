// The replica placement strategy interface and registry.
#pragma once

#include <memory>
#include <string>

#include "placement/types.h"

namespace geored::place {

class PlacementStrategy {
 public:
  virtual ~PlacementStrategy() = default;

  /// Human-readable name used in reports (e.g. "online clustering").
  virtual std::string name() const = 0;

  /// Chooses min(k, #candidates) *distinct* candidate data centers.
  /// Implementations must be deterministic in (input, input.seed).
  virtual Placement place(const PlacementInput& input) const = 0;
};

/// The strategies compared in the paper plus related-work baselines.
enum class StrategyKind {
  kRandom,            ///< paper baseline 1
  kOfflineKMeans,     ///< paper baseline 2
  kOnlineClustering,  ///< the paper's contribution
  kOptimal,           ///< paper baseline 4 (exhaustive oracle)
  kGreedy,            ///< Qiu et al., INFOCOM'01
  kHotZone,           ///< Szymaniak et al., SAINT'05
  kLocalSearch,       ///< Teitz-Bart vertex substitution over online clustering
};

/// Factory for a default-configured strategy of the given kind.
std::unique_ptr<PlacementStrategy> make_strategy(StrategyKind kind);

/// Name used in reports for a strategy kind (matches PlacementStrategy::name).
std::string strategy_name(StrategyKind kind);

}  // namespace geored::place
