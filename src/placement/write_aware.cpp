#include "placement/write_aware.h"

#include <algorithm>
#include <limits>

#include "common/ensure.h"
#include "placement/online_clustering.h"

namespace geored::place {

namespace {

/// Combined objective over a latency lookup: (1-f) * min + f * max per
/// client, weighted by access counts.
template <typename LatencyFn>
double combined_delay(const Placement& placement, const std::vector<ClientRecord>& clients,
                      double write_fraction, const LatencyFn& latency) {
  GEORED_ENSURE(!placement.empty(), "cannot evaluate an empty placement");
  GEORED_ENSURE(write_fraction >= 0.0 && write_fraction <= 1.0,
                "write_fraction must be in [0, 1]");
  double total = 0.0;
  for (const auto& client : clients) {
    double nearest = std::numeric_limits<double>::infinity();
    double farthest = 0.0;
    for (const auto node : placement) {
      const double d = latency(client, node);
      nearest = std::min(nearest, d);
      farthest = std::max(farthest, d);
    }
    total += static_cast<double>(client.access_count) *
             ((1.0 - write_fraction) * nearest + write_fraction * farthest);
  }
  return total;
}

}  // namespace

double estimated_write_aware_delay(const Placement& placement,
                                   const std::vector<CandidateInfo>& candidates,
                                   const std::vector<ClientRecord>& clients,
                                   double write_fraction) {
  const auto latency = [&candidates](const ClientRecord& client, topo::NodeId node) {
    const auto it = std::find_if(candidates.begin(), candidates.end(),
                                 [node](const CandidateInfo& c) { return c.node == node; });
    GEORED_ENSURE(it != candidates.end(), "placement references a non-candidate node");
    return client.coords.distance_to(it->coords);
  };
  return combined_delay(placement, clients, write_fraction, latency);
}

double true_write_aware_delay(const topo::Topology& topology, const Placement& placement,
                              const std::vector<ClientRecord>& clients,
                              double write_fraction) {
  const auto latency = [&topology](const ClientRecord& client, topo::NodeId node) {
    return topology.rtt_ms(client.client, node);
  };
  return combined_delay(placement, clients, write_fraction, latency);
}

WriteAwarePlacement::WriteAwarePlacement(WriteAwareConfig config,
                                         std::unique_ptr<PlacementStrategy> seed_strategy)
    : config_(config),
      seed_(seed_strategy ? std::move(seed_strategy)
                          : std::make_unique<OnlineClusteringPlacement>()) {
  GEORED_ENSURE(config_.write_fraction >= 0.0 && config_.write_fraction <= 1.0,
                "write_fraction must be in [0, 1]");
  GEORED_ENSURE(config_.max_rounds >= 1, "need at least one improvement round");
}

std::string WriteAwarePlacement::name() const {
  return seed_->name() + " +write-aware";
}

Placement WriteAwarePlacement::place(const PlacementInput& input) const {
  GEORED_ENSURE(!input.candidates.empty(), "no candidate data centers");
  Placement placement = seed_->place(input);
  if (input.clients.empty() || placement.size() == input.candidates.size()) {
    return placement;
  }

  const std::size_t n_cand = input.candidates.size();
  std::vector<bool> in_placement(n_cand, false);
  const auto candidate_index = [&](topo::NodeId node) {
    for (std::size_t c = 0; c < n_cand; ++c) {
      if (input.candidates[c].node == node) return c;
    }
    throw InternalError("placement node missing from candidates");
  };
  for (const auto node : placement) in_placement[candidate_index(node)] = true;

  double current = estimated_write_aware_delay(placement, input.candidates, input.clients,
                                               config_.write_fraction);
  for (std::size_t round = 0; round < config_.max_rounds; ++round) {
    bool improved = false;
    Placement best_placement = placement;
    double best_value = current;
    std::size_t best_old = 0, best_new = 0;
    for (std::size_t slot = 0; slot < placement.size(); ++slot) {
      const topo::NodeId original = placement[slot];
      for (std::size_t c = 0; c < n_cand; ++c) {
        if (in_placement[c]) continue;
        placement[slot] = input.candidates[c].node;
        const double value = estimated_write_aware_delay(
            placement, input.candidates, input.clients, config_.write_fraction);
        if (value + 1e-9 < best_value) {
          best_value = value;
          best_placement = placement;
          best_old = candidate_index(original);
          best_new = c;
          improved = true;
        }
      }
      placement[slot] = original;
    }
    if (!improved) break;
    placement = best_placement;
    in_placement[best_old] = false;
    in_placement[best_new] = true;
    current = best_value;
  }
  return placement;
}

}  // namespace geored::place
