// Baseline 2: offline k-means over the recorded coordinates of *every*
// client access. Near-optimal but unscalable — all client coordinates must
// be collected centrally (O(n) bandwidth, O(n^k log n) compute; Table II).
#pragma once

#include "cluster/kmeans.h"
#include "placement/strategy.h"

namespace geored::place {

class OfflineKMeansPlacement final : public PlacementStrategy {
 public:
  explicit OfflineKMeansPlacement(cluster::KMeansConfig kmeans_config = {})
      : kmeans_config_(kmeans_config) {}

  std::string name() const override { return "offline k-means"; }
  Placement place(const PlacementInput& input) const override;

 private:
  cluster::KMeansConfig kmeans_config_;
};

}  // namespace geored::place
