#include "placement/offline_kmeans.h"

#include "common/ensure.h"
#include "common/random.h"
#include "placement/assign.h"
#include "placement/random_placement.h"

namespace geored::place {

Placement OfflineKMeansPlacement::place(const PlacementInput& input) const {
  GEORED_ENSURE(!input.candidates.empty(), "no candidate data centers");
  if (input.clients.empty()) {
    // No usage information at all: degrade to the information-free baseline.
    return RandomPlacement().place(input);
  }

  std::vector<cluster::WeightedPoint> points;
  points.reserve(input.clients.size());
  for (const auto& client : input.clients) {
    points.push_back({client.coords, static_cast<double>(client.access_count)});
  }

  cluster::KMeansConfig config = kmeans_config_;
  config.k = std::min(input.k, input.candidates.size());
  Rng rng(input.seed);
  const auto result = cluster::weighted_kmeans(points, config, rng);

  // Cluster mass = total accesses assigned to each centroid.
  std::vector<double> mass(result.centroids.size(), 0.0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    mass[result.assignment[i]] += points[i].weight;
  }
  return assign_centroids_to_candidates(result.centroids, mass, input.candidates, config.k,
                                        input.seed);
}

}  // namespace geored::place
