// Availability extension (paper future work: "taking into account ... data
// availability"): a decorator that enforces geographic diversity on any
// placement strategy. Latency-optimal placements tend to co-locate replicas
// inside the dominant user region, where one regional outage can take every
// copy offline; this wrapper repairs a placement so that all replicas are
// pairwise at least `min_spread_ms` apart in coordinate space, trading a
// little latency for failure independence.
#pragma once

#include <memory>

#include "placement/strategy.h"

namespace geored::place {

struct SpreadConfig {
  /// Minimum pairwise predicted RTT between replicas, ms.
  double min_spread_ms = 50.0;
};

class SpreadConstrainedPlacement final : public PlacementStrategy {
 public:
  SpreadConstrainedPlacement(std::unique_ptr<PlacementStrategy> inner, SpreadConfig config);

  std::string name() const override { return inner_->name() + " +spread"; }

  /// Runs the inner strategy, then greedily repairs violations: a replica
  /// too close to an already-accepted one is swapped for the nearest unused
  /// candidate that honours the spread; if none exists the original replica
  /// is kept (serving beats failing). The result is always a valid
  /// placement of the same size.
  Placement place(const PlacementInput& input) const override;

 private:
  std::unique_ptr<PlacementStrategy> inner_;
  SpreadConfig config_;
};

/// Minimum pairwise coordinate distance of a placement (for reporting and
/// tests); infinity for placements with fewer than two replicas.
double min_pairwise_spread(const Placement& placement,
                           const std::vector<CandidateInfo>& candidates);

}  // namespace geored::place
