#include "placement/random_placement.h"

#include "common/ensure.h"
#include "common/random.h"

namespace geored::place {

Placement RandomPlacement::place(const PlacementInput& input) const {
  GEORED_ENSURE(!input.candidates.empty(), "no candidate data centers");
  Rng rng(input.seed);
  const std::size_t k = std::min(input.k, input.candidates.size());
  Placement placement;
  placement.reserve(k);
  for (const auto idx : rng.sample_without_replacement(input.candidates.size(), k)) {
    placement.push_back(input.candidates[idx].node);
  }
  return placement;
}

}  // namespace geored::place
