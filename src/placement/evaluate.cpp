#include "placement/evaluate.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/arena.h"
#include "common/ensure.h"
#include "common/point_set.h"
#include "common/thread_pool.h"

namespace geored::place {

namespace {

/// Below this many clients the evaluators stay on the sequential path: the
/// pool dispatch would cost more than the loop, and small inputs keep the
/// exact operation order of the scalar reference implementations.
constexpr std::size_t kMinParallelClients = 2048;

/// q-th smallest of `latencies` (1-based q). Small vectors: partial sort.
double quorum_latency(std::vector<double>& latencies, std::size_t quorum) {
  GEORED_ENSURE(quorum >= 1 && quorum <= latencies.size(),
                "quorum must be within [1, #replicas]");
  std::nth_element(latencies.begin(), latencies.begin() + static_cast<std::ptrdiff_t>(quorum - 1),
                   latencies.end());
  return latencies[quorum - 1];
}

/// Per-node quorum delay for a fixed placement: entry `node` is exactly the
/// delay any client at that node would be charged — the same min (or q-th
/// order statistic) over the same RTT doubles in the same replica order as
/// the per-client scalar loop. Clients at the same node share the entry, so
/// evaluation drops from O(clients × k) to O(nodes × k + clients). Worth
/// building once the client population outnumbers the nodes.
void gather_node_delays(const topo::Topology& topology, const Placement& placement,
                        std::size_t quorum, double* node_delay) {
  const std::size_t n_nodes = topology.size();
  const std::size_t k = placement.size();
  parallel_for(
      n_nodes,
      [&](std::size_t begin, std::size_t end) {
        // One scratch buffer per pool chunk, reused across its nodes.
        std::vector<double> latencies(quorum == 1 ? 0 : k);  // lint: alloc-ok (per chunk)
        for (std::size_t node = begin; node < end; ++node) {
          const auto id = static_cast<topo::NodeId>(node);
          if (quorum == 1) {
            double best = topology.rtt_ms(id, placement.front());
            for (std::size_t r = 1; r < k; ++r) {
              best = std::min(best, topology.rtt_ms(id, placement[r]));
            }
            // The read-one cost model charges each client its true nearest
            // replica; anything else silently inflates the reported delay.
            GEORED_DCHECK(
                [&] {
                  for (const auto replica : placement) {
                    if (topology.rtt_ms(id, replica) < best) return false;
                  }
                  return true;
                }(),
                "node not charged its true nearest replica");
            node_delay[node] = best;
          } else {
            for (std::size_t r = 0; r < k; ++r) {
              latencies[r] = topology.rtt_ms(id, placement[r]);
            }
            node_delay[node] = quorum_latency(latencies, quorum);
          }
        }
      },
      kMinParallelClients / 4);
}

}  // namespace

double true_total_delay(const topo::Topology& topology, const Placement& placement,
                        const std::vector<ClientRecord>& clients, std::size_t quorum) {
  GEORED_ENSURE(!placement.empty(), "cannot evaluate an empty placement");
  GEORED_ENSURE(quorum >= 1 && quorum <= placement.size(),
                "quorum must be within [1, #replicas]");
  const std::size_t k = placement.size();
  const std::size_t n_nodes = topology.size();

  // Amortize the per-node table only when the client list rereads nodes
  // often enough to pay for it; otherwise look RTTs up directly (identical
  // doubles either way, so the objective value cannot change).
  if (clients.size() >= n_nodes && clients.size() >= 64) {
    // The per-node table is epoch scratch: arena-backed so repeated
    // evaluations (thousands per epoch under local search) stop paying a
    // heap round trip each call.
    ArenaScope scope;
    double* node_delay = scope.span<double>(n_nodes);
    gather_node_delays(topology, placement, quorum, node_delay);
    return parallel_reduce_sum(
        clients.size(),
        [&](std::size_t begin, std::size_t end) {
          double partial = 0.0;
          for (std::size_t i = begin; i < end; ++i) {
            const ClientRecord& client = clients[i];
            GEORED_ENSURE(client.client < n_nodes, "client id outside the topology");
            partial += node_delay[client.client] * static_cast<double>(client.access_count);
          }
          return partial;
        },
        kMinParallelClients);
  }

  return parallel_reduce_sum(
      clients.size(),
      [&](std::size_t begin, std::size_t end) {
        double partial = 0.0;
        std::vector<double> latencies(quorum == 1 ? 0 : k);  // lint: alloc-ok (per chunk)
        for (std::size_t i = begin; i < end; ++i) {
          const ClientRecord& client = clients[i];
          if (quorum == 1) {
            double best = topology.rtt_ms(client.client, placement.front());
            for (std::size_t r = 1; r < k; ++r) {
              best = std::min(best, topology.rtt_ms(client.client, placement[r]));
            }
            GEORED_DCHECK(
                [&] {
                  for (const auto replica : placement) {
                    if (topology.rtt_ms(client.client, replica) < best) return false;
                  }
                  return true;
                }(),
                "client not charged its true nearest replica");
            partial += best * static_cast<double>(client.access_count);
          } else {
            for (std::size_t r = 0; r < k; ++r) {
              latencies[r] = topology.rtt_ms(client.client, placement[r]);
            }
            partial += quorum_latency(latencies, quorum) * static_cast<double>(client.access_count);
          }
        }
        return partial;
      },
      kMinParallelClients);
}

double true_average_delay(const topo::Topology& topology, const Placement& placement,
                          const std::vector<ClientRecord>& clients, std::size_t quorum) {
  double accesses = 0.0;
  for (const auto& client : clients) accesses += static_cast<double>(client.access_count);
  GEORED_ENSURE(accesses > 0.0, "average delay over zero accesses");
  return true_total_delay(topology, placement, clients, quorum) / accesses;
}

double estimated_total_delay(const Placement& placement,
                             const std::vector<CandidateInfo>& candidates,
                             const std::vector<ClientRecord>& clients, std::size_t quorum) {
  GEORED_ENSURE(!placement.empty(), "cannot evaluate an empty placement");
  // Map node ids to candidate indices once instead of a linear find_if per
  // placement entry.
  std::unordered_map<topo::NodeId, std::size_t> candidate_index;
  candidate_index.reserve(candidates.size());
  for (std::size_t c = 0; c < candidates.size(); ++c) candidate_index.emplace(candidates[c].node, c);

  // Replica coordinates as one contiguous k×dim block for the distance
  // kernels below.
  PointSet replicas;
  for (const auto id : placement) {
    const auto it = candidate_index.find(id);
    GEORED_ENSURE(it != candidate_index.end(), "placement references a non-candidate node");
    replicas.push_back(candidates[it->second].coords);
  }
  const std::size_t k = placement.size();
  const std::size_t effective_quorum = std::min(quorum, k);

  return parallel_reduce_sum(
      clients.size(),
      [&](std::size_t begin, std::size_t end) {
        double partial = 0.0;
        // One scratch buffer per chunk, reused across its clients.
        std::vector<double> latencies(effective_quorum == 1 ? 0 : k);  // lint: alloc-ok
        for (std::size_t i = begin; i < end; ++i) {
          const ClientRecord& client = clients[i];
          if (effective_quorum == 1) {
            double best_sq = 0.0;
            replicas.nearest_of(client.coords, &best_sq);
            partial += std::sqrt(best_sq) * static_cast<double>(client.access_count);
          } else {
            replicas.distance_row(client.coords, latencies.data());
            partial += quorum_latency(latencies, effective_quorum) *
                       static_cast<double>(client.access_count);
          }
        }
        return partial;
      },
      kMinParallelClients);
}

void validate_placement(const Placement& placement, const PlacementInput& input) {
  const std::size_t expected = std::min(input.k, input.candidates.size());
  GEORED_ENSURE(placement.size() == expected,
                "placement size must be min(k, #candidates)");
  GEORED_DCHECK(input.k == 0 || !placement.empty(),
                "non-trivial placement request produced an empty replica set");
  std::unordered_set<topo::NodeId> candidate_ids;
  candidate_ids.reserve(input.candidates.size());
  for (const auto& candidate : input.candidates) candidate_ids.insert(candidate.node);
  std::unordered_set<topo::NodeId> seen;
  for (const auto id : placement) {
    GEORED_ENSURE(seen.insert(id).second, "placement contains a duplicate data center");
    GEORED_ENSURE(candidate_ids.contains(id), "placement contains a non-candidate node");
  }
}

// --- Pre-optimization reference paths -------------------------------------
//
// Verbatim copies of the evaluators as they stood before the performance
// layer (heap-allocating, pointer-chasing, sequential). They define the
// ground truth the fast paths are tested against and the baseline
// bench/micro_perf.cpp reports speedups over. Do not "optimize" these.

double true_total_delay_scalar(const topo::Topology& topology, const Placement& placement,
                               const std::vector<ClientRecord>& clients, std::size_t quorum) {
  GEORED_ENSURE(!placement.empty(), "cannot evaluate an empty placement");
  double total = 0.0;
  std::vector<double> latencies(placement.size());  // lint: alloc-ok (frozen reference)
  for (const auto& client : clients) {
    if (quorum == 1) {
      double best = topology.rtt_ms(client.client, placement.front());
      for (std::size_t r = 1; r < placement.size(); ++r) {
        best = std::min(best, topology.rtt_ms(client.client, placement[r]));
      }
      total += best * static_cast<double>(client.access_count);
    } else {
      for (std::size_t r = 0; r < placement.size(); ++r) {
        latencies[r] = topology.rtt_ms(client.client, placement[r]);
      }
      total += quorum_latency(latencies, quorum) * static_cast<double>(client.access_count);
    }
  }
  return total;
}

double estimated_total_delay_scalar(const Placement& placement,
                                    const std::vector<CandidateInfo>& candidates,
                                    const std::vector<ClientRecord>& clients,
                                    std::size_t quorum) {
  GEORED_ENSURE(!placement.empty(), "cannot evaluate an empty placement");
  std::vector<const Point*> replica_coords;  // lint: alloc-ok (frozen reference)
  replica_coords.reserve(placement.size());
  for (const auto id : placement) {
    const auto it = std::find_if(candidates.begin(), candidates.end(),
                                 [id](const CandidateInfo& c) { return c.node == id; });
    GEORED_ENSURE(it != candidates.end(), "placement references a non-candidate node");
    replica_coords.push_back(&it->coords);
  }
  double total = 0.0;
  std::vector<double> latencies(placement.size());  // lint: alloc-ok (frozen reference)
  for (const auto& client : clients) {
    for (std::size_t r = 0; r < replica_coords.size(); ++r) {
      latencies[r] = client.coords.distance_to(*replica_coords[r]);
    }
    std::vector<double> scratch = latencies;  // lint: alloc-ok (frozen reference)
    total += quorum_latency(scratch, std::min(quorum, scratch.size())) *
             static_cast<double>(client.access_count);
  }
  return total;
}

}  // namespace geored::place
