#include "placement/evaluate.h"

#include <algorithm>
#include <unordered_set>

#include "common/ensure.h"

namespace geored::place {

namespace {

/// q-th smallest of `latencies` (1-based q). Small vectors: partial sort.
double quorum_latency(std::vector<double>& latencies, std::size_t quorum) {
  GEORED_ENSURE(quorum >= 1 && quorum <= latencies.size(),
                "quorum must be within [1, #replicas]");
  std::nth_element(latencies.begin(), latencies.begin() + static_cast<std::ptrdiff_t>(quorum - 1),
                   latencies.end());
  return latencies[quorum - 1];
}

}  // namespace

double true_total_delay(const topo::Topology& topology, const Placement& placement,
                        const std::vector<ClientRecord>& clients, std::size_t quorum) {
  GEORED_ENSURE(!placement.empty(), "cannot evaluate an empty placement");
  double total = 0.0;
  std::vector<double> latencies(placement.size());
  for (const auto& client : clients) {
    if (quorum == 1) {
      double best = topology.rtt_ms(client.client, placement.front());
      for (std::size_t r = 1; r < placement.size(); ++r) {
        best = std::min(best, topology.rtt_ms(client.client, placement[r]));
      }
      // The read-one cost model charges each client its true nearest
      // replica; anything else silently inflates the reported delay.
      GEORED_DCHECK(
          [&] {
            for (const auto replica : placement) {
              if (topology.rtt_ms(client.client, replica) < best) return false;
            }
            return true;
          }(),
          "client not charged its true nearest replica");
      total += best * static_cast<double>(client.access_count);
    } else {
      for (std::size_t r = 0; r < placement.size(); ++r) {
        latencies[r] = topology.rtt_ms(client.client, placement[r]);
      }
      total += quorum_latency(latencies, quorum) * static_cast<double>(client.access_count);
    }
  }
  return total;
}

double true_average_delay(const topo::Topology& topology, const Placement& placement,
                          const std::vector<ClientRecord>& clients, std::size_t quorum) {
  double accesses = 0.0;
  for (const auto& client : clients) accesses += static_cast<double>(client.access_count);
  GEORED_ENSURE(accesses > 0.0, "average delay over zero accesses");
  return true_total_delay(topology, placement, clients, quorum) / accesses;
}

double estimated_total_delay(const Placement& placement,
                             const std::vector<CandidateInfo>& candidates,
                             const std::vector<ClientRecord>& clients, std::size_t quorum) {
  GEORED_ENSURE(!placement.empty(), "cannot evaluate an empty placement");
  // Map node ids to candidate coordinates once.
  std::vector<const Point*> replica_coords;
  replica_coords.reserve(placement.size());
  for (const auto id : placement) {
    const auto it = std::find_if(candidates.begin(), candidates.end(),
                                 [id](const CandidateInfo& c) { return c.node == id; });
    GEORED_ENSURE(it != candidates.end(), "placement references a non-candidate node");
    replica_coords.push_back(&it->coords);
  }
  double total = 0.0;
  std::vector<double> latencies(placement.size());
  for (const auto& client : clients) {
    for (std::size_t r = 0; r < replica_coords.size(); ++r) {
      latencies[r] = client.coords.distance_to(*replica_coords[r]);
    }
    std::vector<double> scratch = latencies;
    total += quorum_latency(scratch, std::min(quorum, scratch.size())) *
             static_cast<double>(client.access_count);
  }
  return total;
}

void validate_placement(const Placement& placement, const PlacementInput& input) {
  const std::size_t expected = std::min(input.k, input.candidates.size());
  GEORED_ENSURE(placement.size() == expected,
                "placement size must be min(k, #candidates)");
  GEORED_DCHECK(input.k == 0 || !placement.empty(),
                "non-trivial placement request produced an empty replica set");
  std::unordered_set<topo::NodeId> seen;
  for (const auto id : placement) {
    GEORED_ENSURE(seen.insert(id).second, "placement contains a duplicate data center");
    const bool known = std::any_of(input.candidates.begin(), input.candidates.end(),
                                   [id](const CandidateInfo& c) { return c.node == id; });
    GEORED_ENSURE(known, "placement contains a non-candidate node");
  }
}

}  // namespace geored::place
