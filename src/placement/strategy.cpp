#include "placement/strategy.h"

#include "common/ensure.h"
#include "placement/greedy.h"
#include "placement/hotzone.h"
#include "placement/local_search.h"
#include "placement/offline_kmeans.h"
#include "placement/online_clustering.h"
#include "placement/optimal.h"
#include "placement/random_placement.h"

namespace geored::place {

std::unique_ptr<PlacementStrategy> make_strategy(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kRandom:
      return std::make_unique<RandomPlacement>();
    case StrategyKind::kOfflineKMeans:
      return std::make_unique<OfflineKMeansPlacement>();
    case StrategyKind::kOnlineClustering:
      return std::make_unique<OnlineClusteringPlacement>();
    case StrategyKind::kOptimal:
      return std::make_unique<OptimalPlacement>();
    case StrategyKind::kGreedy:
      return std::make_unique<GreedyPlacement>();
    case StrategyKind::kHotZone:
      return std::make_unique<HotZonePlacement>();
    case StrategyKind::kLocalSearch:
      return std::make_unique<LocalSearchPlacement>();
  }
  throw InternalError("unknown strategy kind");
}

std::string strategy_name(StrategyKind kind) { return make_strategy(kind)->name(); }

}  // namespace geored::place
