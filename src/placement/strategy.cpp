#include "placement/strategy.h"

#include <iterator>
#include <stdexcept>

#include "common/ensure.h"
#include "placement/greedy.h"
#include "placement/hotzone.h"
#include "placement/local_search.h"
#include "placement/offline_kmeans.h"
#include "placement/online_clustering.h"
#include "placement/optimal.h"
#include "placement/random_placement.h"

namespace geored::place {

namespace {

struct RegistryEntry {
  const char* name;
  StrategyKind kind;
};

/// Canonical names, in StrategyKind order (strategy_names relies on this).
constexpr RegistryEntry kRegistry[] = {
    {"random", StrategyKind::kRandom},
    {"offline_kmeans", StrategyKind::kOfflineKMeans},
    {"online", StrategyKind::kOnlineClustering},
    {"optimal", StrategyKind::kOptimal},
    {"greedy", StrategyKind::kGreedy},
    {"hotzone", StrategyKind::kHotZone},
    {"local_search", StrategyKind::kLocalSearch},
};

/// Historical CLI spellings kept working.
constexpr RegistryEntry kAliases[] = {
    {"offline", StrategyKind::kOfflineKMeans},
    {"local-search", StrategyKind::kLocalSearch},
};

}  // namespace

std::unique_ptr<PlacementStrategy> make_strategy(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kRandom:
      return std::make_unique<RandomPlacement>();
    case StrategyKind::kOfflineKMeans:
      return std::make_unique<OfflineKMeansPlacement>();
    case StrategyKind::kOnlineClustering:
      return std::make_unique<OnlineClusteringPlacement>();
    case StrategyKind::kOptimal:
      return std::make_unique<OptimalPlacement>();
    case StrategyKind::kGreedy:
      return std::make_unique<GreedyPlacement>();
    case StrategyKind::kHotZone:
      return std::make_unique<HotZonePlacement>();
    case StrategyKind::kLocalSearch:
      return std::make_unique<LocalSearchPlacement>();
  }
  throw InternalError("unknown strategy kind");
}

StrategyKind strategy_kind(const std::string& name) {
  for (const auto& entry : kRegistry) {
    if (name == entry.name) return entry.kind;
  }
  for (const auto& entry : kAliases) {
    if (name == entry.name) return entry.kind;
  }
  std::string known;
  for (const auto& entry : kRegistry) {
    known += known.empty() ? entry.name : std::string("|") + entry.name;
  }
  throw std::invalid_argument("unknown strategy '" + name + "' (expected " + known + ")");
}

std::unique_ptr<PlacementStrategy> make_strategy(const std::string& name) {
  return make_strategy(strategy_kind(name));
}

std::vector<std::string> strategy_names() {
  std::vector<std::string> names;
  names.reserve(std::size(kRegistry));
  for (const auto& entry : kRegistry) names.emplace_back(entry.name);
  return names;
}

std::string strategy_name(StrategyKind kind) { return make_strategy(kind)->name(); }

}  // namespace geored::place
