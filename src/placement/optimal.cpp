#include "placement/optimal.h"

#include <limits>

#include "common/ensure.h"
#include "placement/evaluate.h"

namespace geored::place {

namespace {

/// Recursive enumeration of k-subsets with a shared prefix: `current_min`
/// holds, per client, the best latency among the candidates chosen so far,
/// so extending a prefix costs one pass over the clients.
class ExhaustiveSearch {
 public:
  ExhaustiveSearch(const PlacementInput& input, std::size_t k)
      : input_(input),
        k_(k),
        latencies_(input.candidates.size(), std::vector<double>(input.clients.size())) {
    for (std::size_t c = 0; c < input.candidates.size(); ++c) {
      for (std::size_t u = 0; u < input.clients.size(); ++u) {
        latencies_[c][u] =
            input.topology->rtt_ms(input.clients[u].client, input.candidates[c].node);
      }
    }
    access_weight_.reserve(input.clients.size());
    for (const auto& client : input.clients) {
      access_weight_.push_back(static_cast<double>(client.access_count));
    }
  }

  Placement run() {
    best_total_ = std::numeric_limits<double>::infinity();
    chosen_.clear();
    std::vector<double> prefix_min(input_.clients.size(),
                                   std::numeric_limits<double>::infinity());
    recurse(0, prefix_min);
    Placement placement;
    placement.reserve(best_.size());
    for (const auto idx : best_) placement.push_back(input_.candidates[idx].node);
    return placement;
  }

 private:
  void recurse(std::size_t next, const std::vector<double>& prefix_min) {
    if (chosen_.size() == k_) {
      double total = 0.0;
      for (std::size_t u = 0; u < prefix_min.size(); ++u) {
        total += prefix_min[u] * access_weight_[u];
      }
      if (total < best_total_) {
        best_total_ = total;
        best_ = chosen_;
      }
      return;
    }
    // Not enough candidates left to complete a k-subset?
    const std::size_t remaining_needed = k_ - chosen_.size();
    for (std::size_t c = next; c + remaining_needed <= input_.candidates.size(); ++c) {
      std::vector<double> extended(prefix_min.size());
      for (std::size_t u = 0; u < prefix_min.size(); ++u) {
        extended[u] = std::min(prefix_min[u], latencies_[c][u]);
      }
      chosen_.push_back(c);
      recurse(c + 1, extended);
      chosen_.pop_back();
    }
  }

  const PlacementInput& input_;
  std::size_t k_;
  std::vector<std::vector<double>> latencies_;  // candidate -> client -> rtt
  std::vector<double> access_weight_;
  std::vector<std::size_t> chosen_;
  std::vector<std::size_t> best_;
  double best_total_ = 0.0;
};

/// Plain enumeration evaluating each complete subset (used for quorum > 1,
/// where prefix minima do not compose).
class QuorumSearch {
 public:
  QuorumSearch(const PlacementInput& input, std::size_t k) : input_(input), k_(k) {}

  Placement run() {
    std::vector<std::size_t> indices(k_);
    Placement best;
    double best_total = std::numeric_limits<double>::infinity();
    Placement current(k_);
    enumerate(0, 0, indices, [&](const std::vector<std::size_t>& subset) {
      for (std::size_t i = 0; i < k_; ++i) current[i] = input_.candidates[subset[i]].node;
      const double total =
          true_total_delay(*input_.topology, current, input_.clients, input_.quorum);
      if (total < best_total) {
        best_total = total;
        best = current;
      }
    });
    return best;
  }

 private:
  template <typename Fn>
  void enumerate(std::size_t depth, std::size_t next, std::vector<std::size_t>& indices,
                 const Fn& fn) {
    if (depth == k_) {
      fn(indices);
      return;
    }
    for (std::size_t c = next; c + (k_ - depth) <= input_.candidates.size(); ++c) {
      indices[depth] = c;
      enumerate(depth + 1, c + 1, indices, fn);
    }
  }

  const PlacementInput& input_;
  std::size_t k_;
};

}  // namespace

Placement OptimalPlacement::place(const PlacementInput& input) const {
  GEORED_ENSURE(input.topology != nullptr,
                "optimal placement requires the ground-truth topology");
  GEORED_ENSURE(!input.candidates.empty(), "no candidate data centers");
  GEORED_ENSURE(!input.clients.empty(), "optimal placement requires client records");
  const std::size_t k = std::min(input.k, input.candidates.size());
  GEORED_ENSURE(input.quorum >= 1 && input.quorum <= k, "quorum must be in [1, k]");
  if (input.quorum == 1) {
    return ExhaustiveSearch(input, k).run();
  }
  return QuorumSearch(input, k).run();
}

}  // namespace geored::place
