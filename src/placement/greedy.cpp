#include "placement/greedy.h"

#include <limits>

#include "common/ensure.h"
#include "common/thread_pool.h"
#include "placement/latency_matrix.h"
#include "placement/random_placement.h"

namespace geored::place {

Placement GreedyPlacement::place(const PlacementInput& input) const {
  GEORED_ENSURE(!input.candidates.empty(), "no candidate data centers");
  if (input.clients.empty()) return RandomPlacement().place(input);
  const std::size_t k = std::min(input.k, input.candidates.size());

  // Estimated latency of every (candidate, client) pair, computed once into
  // one contiguous candidate-major block.
  const std::size_t n_cand = input.candidates.size();
  const std::size_t n_client = input.clients.size();
  const LatencyMatrix latency = build_latency_matrix(input.candidates, input.clients);
  const std::vector<double> weight = access_weights(input.clients);

  std::vector<double> current_min(n_client, std::numeric_limits<double>::infinity());
  std::vector<bool> used(n_cand, false);
  std::vector<double> totals(n_cand, std::numeric_limits<double>::infinity());
  Placement placement;
  placement.reserve(k);

  for (std::size_t round = 0; round < k; ++round) {
    // Each candidate's marginal total is an independent sequential pass over
    // the clients, so the candidate loop parallelizes without changing a
    // single rounding: partial sums never cross chunk boundaries.
    parallel_for(
        n_cand,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t c = begin; c < end; ++c) {
            if (used[c]) continue;
            const double* row = latency.row(c);
            double total = 0.0;
            for (std::size_t u = 0; u < n_client; ++u) {
              total += std::min(current_min[u], row[u]) * weight[u];
            }
            totals[c] = total;
          }
        },
        min_parallel_rows(n_client));
    std::size_t best_candidate = 0;
    double best_total = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < n_cand; ++c) {
      if (used[c]) continue;
      if (totals[c] < best_total) {
        best_total = totals[c];
        best_candidate = c;
      }
    }
    used[best_candidate] = true;
    placement.push_back(input.candidates[best_candidate].node);
    const double* row = latency.row(best_candidate);
    for (std::size_t u = 0; u < n_client; ++u) {
      current_min[u] = std::min(current_min[u], row[u]);
    }
  }
  return placement;
}

}  // namespace geored::place
