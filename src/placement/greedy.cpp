#include "placement/greedy.h"

#include <limits>

#include "common/ensure.h"
#include "placement/random_placement.h"

namespace geored::place {

Placement GreedyPlacement::place(const PlacementInput& input) const {
  GEORED_ENSURE(!input.candidates.empty(), "no candidate data centers");
  if (input.clients.empty()) return RandomPlacement().place(input);
  const std::size_t k = std::min(input.k, input.candidates.size());

  // Estimated latency of every (candidate, client) pair, computed once.
  const std::size_t n_cand = input.candidates.size();
  const std::size_t n_client = input.clients.size();
  std::vector<std::vector<double>> latency(n_cand, std::vector<double>(n_client));
  for (std::size_t c = 0; c < n_cand; ++c) {
    for (std::size_t u = 0; u < n_client; ++u) {
      latency[c][u] = input.candidates[c].coords.distance_to(input.clients[u].coords);
    }
  }

  std::vector<double> current_min(n_client, std::numeric_limits<double>::infinity());
  std::vector<bool> used(n_cand, false);
  Placement placement;
  placement.reserve(k);

  for (std::size_t round = 0; round < k; ++round) {
    std::size_t best_candidate = 0;
    double best_total = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < n_cand; ++c) {
      if (used[c]) continue;
      double total = 0.0;
      for (std::size_t u = 0; u < n_client; ++u) {
        total += std::min(current_min[u], latency[c][u]) *
                 static_cast<double>(input.clients[u].access_count);
      }
      if (total < best_total) {
        best_total = total;
        best_candidate = c;
      }
    }
    used[best_candidate] = true;
    placement.push_back(input.candidates[best_candidate].node);
    for (std::size_t u = 0; u < n_client; ++u) {
      current_min[u] = std::min(current_min[u], latency[best_candidate][u]);
    }
  }
  return placement;
}

}  // namespace geored::place
