// Shared final step of all clustering-based strategies: map cluster
// centroids to *distinct* candidate data centers (Algorithm 1, lines 3-5),
// optionally respecting per-candidate capacity (load-aware extension).
#pragma once

#include <cstdint>
#include <vector>

#include "common/point.h"
#include "placement/types.h"

namespace geored::place {

/// Maps each centroid, in order of descending `priorities` (typically the
/// cluster's access mass), to the nearest not-yet-used candidate.
///
/// When `demands` is supplied (one entry per centroid, same order as
/// `centroids`), a candidate is only eligible while its remaining capacity
/// covers the centroid's demand; if no candidate has capacity left the
/// nearest unused one is taken anyway (serving degraded beats not serving).
///
/// If fewer centroids than k are supplied, the remaining slots are filled
/// with unused candidates chosen uniformly at random (seeded) — the
/// information-free fallback.
Placement assign_centroids_to_candidates(const std::vector<Point>& centroids,
                                         const std::vector<double>& priorities,
                                         const std::vector<CandidateInfo>& candidates,
                                         std::size_t k, std::uint64_t seed,
                                         const std::vector<double>* demands = nullptr);

}  // namespace geored::place
