// Write-aware placement (the direction of Sivasubramanian et al. [10] in
// the paper's related work).
//
// The paper assumes read-dominated objects and ignores update propagation
// (§II-A). When writes matter, they pull the optimum the other way: a read
// is served by the *closest* replica, but a write must reach *every*
// replica (it completes with the slowest ack in a write-all regime), so
// spreading replicas towards readers raises write latency. The combined
// objective per client u with access weight w_u and write fraction f:
//
//   (1 - f) * w_u * min_c d(u, c)   +   f * w_u * max_c d(u, c)
//
// This module provides the objective and a strategy that minimizes it by
// vertex-substitution local search from the paper's online-clustering seed.
#pragma once

#include <memory>

#include "placement/strategy.h"

namespace geored::place {

struct WriteAwareConfig {
  /// Fraction of accesses that are writes, in [0, 1]. 0 reduces to the
  /// paper's read-only objective.
  double write_fraction = 0.2;
  std::size_t max_rounds = 64;  ///< local-search improvement rounds
};

/// Coordinate-estimated combined objective of a placement (what the
/// strategy minimizes).
double estimated_write_aware_delay(const Placement& placement,
                                   const std::vector<CandidateInfo>& candidates,
                                   const std::vector<ClientRecord>& clients,
                                   double write_fraction);

/// Ground-truth combined objective (for scoring in tests and benches).
double true_write_aware_delay(const topo::Topology& topology, const Placement& placement,
                              const std::vector<ClientRecord>& clients,
                              double write_fraction);

class WriteAwarePlacement final : public PlacementStrategy {
 public:
  explicit WriteAwarePlacement(WriteAwareConfig config = {},
                               std::unique_ptr<PlacementStrategy> seed_strategy = nullptr);

  std::string name() const override;
  Placement place(const PlacementInput& input) const override;

 private:
  WriteAwareConfig config_;
  std::unique_ptr<PlacementStrategy> seed_;
};

}  // namespace geored::place
