// The paper's contribution (Algorithm 1): macro-clustering of per-replica
// micro-cluster summaries.
//
// Input: the k*m micro-clusters shipped by the current replica servers.
// Each micro-cluster is treated as a pseudo-point at its centroid, weighted
// by its access count (optionally by data volume); weighted k-means merges
// them into k macro-clusters, and each macro centroid is mapped to the
// nearest distinct candidate data center. Bandwidth and compute are
// independent of the number of clients (Table II).
#pragma once

#include "cluster/kmeans.h"
#include "placement/strategy.h"

namespace geored::place {

struct OnlineClusteringConfig {
  cluster::KMeansConfig kmeans;
  /// Weigh pseudo-points by data volume instead of access count. The paper
  /// maintains both; access count is its default objective (delay per
  /// access), data volume suits transfer-time objectives.
  bool weigh_by_data_volume = false;
  /// Respect candidate capacities when mapping macro-clusters to data
  /// centers (load-aware extension; off reproduces the paper).
  bool load_aware = false;

  /// Warm-start centroids, typically the previous epoch's macro-cluster
  /// centroids (empty = cold start, the paper's behavior). When provided,
  /// Lloyd also runs from them and wins whenever its objective is within
  /// `warm_start_tolerance` of the cold k-means++ result — stable
  /// populations then produce *stable* placements instead of churning with
  /// the seeding randomness, while real population shifts still win.
  std::vector<Point> warm_start_centroids;
  double warm_start_tolerance = 0.02;

  /// Route the solves through the frozen scalar k-means references
  /// (weighted_kmeans_scalar / weighted_kmeans_from_scalar) instead of the
  /// accelerated solvers. The references are bit-identical by contract, so
  /// this changes wall time only — it exists for the re-armed
  /// epoch_end_to_end bench baseline and equivalence tests, never for
  /// production configs.
  bool use_scalar_solver = false;
};

/// place() plus the macro-cluster centroids behind the decision (callers
/// feed them back as the next epoch's warm start).
struct OnlineClusteringDetails {
  Placement placement;
  std::vector<Point> macro_centroids;
};

class OnlineClusteringPlacement final : public PlacementStrategy {
 public:
  explicit OnlineClusteringPlacement(OnlineClusteringConfig config = {}) : config_(config) {}

  std::string name() const override { return "online clustering"; }
  Placement place(const PlacementInput& input) const override;

  /// As place(), also returning the winning macro-cluster centroids.
  OnlineClusteringDetails place_detailed(const PlacementInput& input) const;

 private:
  OnlineClusteringConfig config_;
};

}  // namespace geored::place
