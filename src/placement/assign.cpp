#include "placement/assign.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/ensure.h"
#include "common/random.h"

namespace geored::place {

Placement assign_centroids_to_candidates(const std::vector<Point>& centroids,
                                         const std::vector<double>& priorities,
                                         const std::vector<CandidateInfo>& candidates,
                                         std::size_t k, std::uint64_t seed,
                                         const std::vector<double>* demands) {
  GEORED_ENSURE(!candidates.empty(), "no candidate data centers");
  GEORED_ENSURE(centroids.size() == priorities.size(),
                "one priority per centroid required");
  GEORED_ENSURE(demands == nullptr || demands->size() == centroids.size(),
                "one demand per centroid required");
  const std::size_t target = std::min(k, candidates.size());

  // Process centroids by descending priority so the heaviest user
  // populations get first pick of the data centers.
  std::vector<std::size_t> order(centroids.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return priorities[a] > priorities[b]; });

  std::vector<bool> used(candidates.size(), false);
  std::vector<double> remaining_capacity(candidates.size());
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    remaining_capacity[c] = candidates[c].capacity;
  }

  Placement placement;
  placement.reserve(target);
  for (const std::size_t ci : order) {
    if (placement.size() == target) break;
    const Point& centroid = centroids[ci];
    const double demand = demands ? (*demands)[ci] : 0.0;

    auto pick_nearest = [&](bool respect_capacity) -> std::ptrdiff_t {
      std::ptrdiff_t best = -1;
      double best_dist = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        if (used[c]) continue;
        if (respect_capacity && remaining_capacity[c] < demand) continue;
        const double dist = centroid.distance_squared_to(candidates[c].coords);
        if (dist < best_dist) {
          best_dist = dist;
          best = static_cast<std::ptrdiff_t>(c);
        }
      }
      return best;
    };

    std::ptrdiff_t chosen = pick_nearest(demands != nullptr);
    if (chosen < 0) chosen = pick_nearest(false);  // nobody has capacity: degrade
    GEORED_CHECK(chosen >= 0, "ran out of candidates before reaching k");
    used[static_cast<std::size_t>(chosen)] = true;
    remaining_capacity[static_cast<std::size_t>(chosen)] -= demand;
    placement.push_back(candidates[static_cast<std::size_t>(chosen)].node);
  }

  // Fewer clusters than k (e.g. one user population but a redundancy
  // requirement of several replicas): place the extra replicas at the
  // unused candidates nearest the known populations, cycling through the
  // centroids in priority order. Only with no usage information at all do
  // we fall back to a random fill.
  if (placement.size() < target && !centroids.empty()) {
    std::size_t cursor = 0;
    while (placement.size() < target) {
      const Point& centroid = centroids[order[cursor % order.size()]];
      ++cursor;
      std::ptrdiff_t best = -1;
      double best_dist = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        if (used[c]) continue;
        const double dist = centroid.distance_squared_to(candidates[c].coords);
        if (dist < best_dist) {
          best_dist = dist;
          best = static_cast<std::ptrdiff_t>(c);
        }
      }
      GEORED_CHECK(best >= 0, "ran out of candidates before reaching k");
      used[static_cast<std::size_t>(best)] = true;
      placement.push_back(candidates[static_cast<std::size_t>(best)].node);
    }
  } else if (placement.size() < target) {
    Rng rng(seed ^ 0xabcdef1234567890ULL);
    std::vector<std::size_t> unused;
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      if (!used[c]) unused.push_back(c);
    }
    const auto fill = rng.sample_without_replacement(unused.size(), target - placement.size());
    for (const auto idx : fill) placement.push_back(candidates[unused[idx]].node);
  }
  GEORED_DCHECK(placement.size() == target,
                "centroid assignment did not produce min(k, #candidates) replicas");
  GEORED_DCHECK(
      [&] {
        std::vector<topo::NodeId> sorted(placement.begin(), placement.end());
        std::sort(sorted.begin(), sorted.end());
        return std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end();
      }(),
      "centroid assignment produced duplicate replicas");
  return placement;
}

}  // namespace geored::place
