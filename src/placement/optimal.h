// Baseline 4: the impractical oracle. Enumerates every k-subset of the
// candidate set and evaluates the *true* total access delay with the
// ground-truth RTT matrix, returning the global optimum. Exponential in k;
// included (as in the paper) purely to quantify how close the heuristics get.
#pragma once

#include "placement/strategy.h"

namespace geored::place {

class OptimalPlacement final : public PlacementStrategy {
 public:
  std::string name() const override { return "optimal"; }

  /// Requires input.topology (the oracle is allowed to see ground truth) and
  /// per-client records. For quorum == 1 the enumeration shares per-prefix
  /// minima across the recursion, costing O(C(n,k) * #clients) instead of
  /// O(C(n,k) * #clients * k).
  Placement place(const PlacementInput& input) const override;
};

}  // namespace geored::place
