// HotZone-style cell baseline (Szymaniak, Pierre & van Steen, SAINT'05):
// partition the coordinate space into uniform cells, pick the k most crowded
// cells, and place a replica at the candidate nearest each cell's center of
// mass. The paper's related work notes its inherent limitation — all clients
// outside the chosen cells are ignored — which the benches make visible.
#pragma once

#include "placement/strategy.h"

namespace geored::place {

struct HotZoneConfig {
  /// Cell edge length in coordinate-space milliseconds. 0 = auto: one
  /// eighth of the widest extent of the client bounding box.
  double cell_size_ms = 0.0;
};

class HotZonePlacement final : public PlacementStrategy {
 public:
  explicit HotZonePlacement(HotZoneConfig config = {}) : config_(config) {}

  std::string name() const override { return "hotzone"; }
  Placement place(const PlacementInput& input) const override;

 private:
  HotZoneConfig config_;
};

}  // namespace geored::place
