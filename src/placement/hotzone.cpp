#include "placement/hotzone.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>

#include "common/ensure.h"
#include "placement/assign.h"
#include "placement/random_placement.h"

namespace geored::place {

Placement HotZonePlacement::place(const PlacementInput& input) const {
  GEORED_ENSURE(!input.candidates.empty(), "no candidate data centers");
  if (input.clients.empty()) return RandomPlacement().place(input);
  const std::size_t k = std::min(input.k, input.candidates.size());
  const std::size_t dim = input.clients.front().coords.dim();

  double cell = config_.cell_size_ms;
  if (cell <= 0.0) {
    // Auto: an eighth of the widest axis extent of the client cloud.
    double widest = 0.0;
    for (std::size_t d = 0; d < dim; ++d) {
      double lo = std::numeric_limits<double>::infinity();
      double hi = -std::numeric_limits<double>::infinity();
      for (const auto& client : input.clients) {
        lo = std::min(lo, client.coords[d]);
        hi = std::max(hi, client.coords[d]);
      }
      widest = std::max(widest, hi - lo);
    }
    cell = widest > 0.0 ? widest / 8.0 : 1.0;
  }

  // Bucket clients into cells; track per-cell access mass and center of mass.
  struct Cell {
    double mass = 0.0;
    Point weighted_sum;
  };
  std::map<std::vector<std::int64_t>, Cell> cells;
  for (const auto& client : input.clients) {
    std::vector<std::int64_t> key(dim);
    for (std::size_t d = 0; d < dim; ++d) {
      key[d] = static_cast<std::int64_t>(std::floor(client.coords[d] / cell));
    }
    auto& entry = cells[key];
    const auto weight = static_cast<double>(client.access_count);
    if (entry.weighted_sum.empty()) entry.weighted_sum = Point(dim);
    entry.mass += weight;
    entry.weighted_sum += client.coords * weight;
  }

  // k most crowded cells, represented by their center of mass.
  std::vector<std::pair<double, Point>> ranked;
  ranked.reserve(cells.size());
  for (const auto& [key, entry] : cells) {
    if (entry.mass <= 0.0) continue;
    ranked.emplace_back(entry.mass, entry.weighted_sum / entry.mass);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  ranked.resize(std::min(ranked.size(), k));

  std::vector<Point> centroids;
  std::vector<double> priorities;
  for (const auto& [mass, center] : ranked) {
    centroids.push_back(center);
    priorities.push_back(mass);
  }
  return assign_centroids_to_candidates(centroids, priorities, input.candidates, k, input.seed);
}

}  // namespace geored::place
