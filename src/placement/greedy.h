// Greedy baseline (Qiu, Padmanabhan & Voelker, INFOCOM'01): add replicas one
// at a time, each time picking the candidate that most reduces the total
// client delay given the replicas already chosen. Uses full per-client
// knowledge (coordinate-estimated latencies), so it shares offline
// k-means' scalability problem but is a strong quality baseline.
#pragma once

#include "placement/strategy.h"

namespace geored::place {

class GreedyPlacement final : public PlacementStrategy {
 public:
  std::string name() const override { return "greedy"; }
  Placement place(const PlacementInput& input) const override;
};

}  // namespace geored::place
