// Shared candidate × client estimated-latency matrix for the search
// strategies (greedy, local search).
//
// One flat candidate-major buffer filled by the PointSet distance kernels:
// row c holds the embedding distance from candidate c to every client, in
// client order, with the same floating-point operation sequence as the
// scalar `coords.distance_to(...)` double loop it replaces. Rows are
// independent, so the fill parallelizes with per-row writes and is bitwise
// identical at any thread count.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/point_set.h"
#include "common/thread_pool.h"
#include "placement/types.h"

namespace geored::place {

struct LatencyMatrix {
  std::size_t clients_per_row = 0;
  std::vector<double> data;  // candidates × clients, candidate-major

  const double* row(std::size_t c) const { return data.data() + c * clients_per_row; }
};

/// Scale gate: parallelize a loop whose iterations each cost `row_cost`
/// scalar operations only once the total work clears the evaluator grain.
inline std::size_t min_parallel_rows(std::size_t row_cost) {
  constexpr std::size_t kMinParallelWork = 2048;
  return std::max<std::size_t>(2, kMinParallelWork / std::max<std::size_t>(1, row_cost));
}

inline LatencyMatrix build_latency_matrix(const std::vector<CandidateInfo>& candidates,
                                          const std::vector<ClientRecord>& clients) {
  PointSet client_coords;
  client_coords.reserve(clients.size());
  for (const auto& client : clients) client_coords.push_back(client.coords);

  LatencyMatrix matrix;
  matrix.clients_per_row = clients.size();
  matrix.data.resize(candidates.size() * clients.size());
  parallel_for(
      candidates.size(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t c = begin; c < end; ++c) {
          client_coords.distance_row(candidates[c].coords,
                                     matrix.data.data() + c * clients.size());
        }
      },
      min_parallel_rows(clients.size()));
  return matrix;
}

/// Per-client access weights as one contiguous vector.
inline std::vector<double> access_weights(const std::vector<ClientRecord>& clients) {
  std::vector<double> weights(clients.size());
  for (std::size_t u = 0; u < clients.size(); ++u) {
    weights[u] = static_cast<double>(clients[u].access_count);
  }
  return weights;
}

}  // namespace geored::place
