// Baseline 1: uniformly random choice of k candidate data centers — what
// systems that ignore client locations (Dynamo/Cassandra-style hash or rack
// placement) effectively do at WAN scale.
#pragma once

#include "placement/strategy.h"

namespace geored::place {

class RandomPlacement final : public PlacementStrategy {
 public:
  std::string name() const override { return "random"; }
  Placement place(const PlacementInput& input) const override;
};

}  // namespace geored::place
