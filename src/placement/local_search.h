// Local-search placement: Teitz-Bart vertex substitution for the p-median
// problem. Starting from any seed placement, repeatedly perform the single
// replica<->candidate swap that most reduces the (coordinate-estimated)
// total client delay, until no swap improves — a local optimum of the
// placement objective. The classic strong heuristic of the facility-
// location literature the paper's problem is an instance of; slower than
// one k-means pass but usually closer to optimal.
#pragma once

#include <memory>

#include "placement/strategy.h"

namespace geored::place {

struct LocalSearchConfig {
  /// Hard cap on improvement rounds (each round scans all swaps).
  std::size_t max_rounds = 64;
  /// Minimum relative improvement for a swap to count.
  double tolerance = 1e-9;
};

class LocalSearchPlacement final : public PlacementStrategy {
 public:
  /// `seed_strategy` produces the starting placement (defaults to the
  /// paper's online clustering, making local search a refinement pass on
  /// top of it).
  explicit LocalSearchPlacement(std::unique_ptr<PlacementStrategy> seed_strategy = nullptr,
                                LocalSearchConfig config = {});

  std::string name() const override;
  Placement place(const PlacementInput& input) const override;

 private:
  std::unique_ptr<PlacementStrategy> seed_;
  LocalSearchConfig config_;
};

}  // namespace geored::place
