// Simulated wide-area network: delivers messages between topology nodes with
// one-way delays sampled from the ground-truth RTT matrix, and accounts for
// every byte by traffic class (the raw material of the Table II overhead
// comparison).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "sim/simulator.h"
#include "topology/topology.h"

namespace geored::sim {

/// Message accounting categories.
enum class TrafficClass : std::size_t {
  kAccess = 0,     ///< client data requests/responses
  kSummary = 1,    ///< micro-cluster summaries shipped to the coordinator
  kControl = 2,    ///< placement decisions, replica directory updates
  kMigration = 3,  ///< replica data transfers
};
inline constexpr std::size_t kTrafficClassCount = 4;

struct TrafficStats {
  std::array<std::uint64_t, kTrafficClassCount> bytes{};
  std::array<std::uint64_t, kTrafficClassCount> messages{};

  std::uint64_t total_bytes() const;
  std::string to_string() const;
};

struct NetworkConfig {
  /// Link bandwidth used to convert message size into serialization delay;
  /// 0 disables the term (latency-only model, the paper's setting).
  double bandwidth_bytes_per_ms = 0.0;
  /// Per-message jitter fraction: one-way delay is scaled by a deterministic
  /// pseudo-random factor in [1-jitter, 1+jitter]. 0 = none.
  double jitter = 0.0;
};

class Network {
 public:
  Network(Simulator& simulator, const topo::Topology& topology, NetworkConfig config = {});

  /// Delivers a message of `bytes` bytes from `from` to `to`, invoking
  /// `on_delivery` after half the pair's RTT (plus serialization delay and
  /// jitter, when configured). Loopback (from == to) delivers after 0 ms.
  void send(topo::NodeId from, topo::NodeId to, std::size_t bytes, TrafficClass traffic_class,
            std::function<void()> on_delivery);

  double rtt_ms(topo::NodeId a, topo::NodeId b) const { return topology_.rtt_ms(a, b); }
  const topo::Topology& topology() const { return topology_; }
  const TrafficStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  Simulator& simulator_;
  const topo::Topology& topology_;
  NetworkConfig config_;
  TrafficStats stats_;
  std::uint64_t jitter_state_ = 0x6a09e667f3bcc909ULL;
};

}  // namespace geored::sim
