#include "sim/network.h"

#include <sstream>

#include "common/ensure.h"
#include "common/random.h"

namespace geored::sim {

namespace {
constexpr const char* kClassNames[kTrafficClassCount] = {"access", "summary", "control",
                                                         "migration"};
}

std::uint64_t TrafficStats::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto b : bytes) total += b;
  return total;
}

std::string TrafficStats::to_string() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < kTrafficClassCount; ++c) {
    if (c > 0) os << ", ";
    os << kClassNames[c] << ": " << bytes[c] << " B / " << messages[c] << " msgs";
  }
  return os.str();
}

Network::Network(Simulator& simulator, const topo::Topology& topology, NetworkConfig config)
    : simulator_(simulator), topology_(topology), config_(config) {
  GEORED_ENSURE(config.bandwidth_bytes_per_ms >= 0.0, "bandwidth must be non-negative");
  GEORED_ENSURE(config.jitter >= 0.0 && config.jitter < 1.0, "jitter must be in [0,1)");
}

void Network::send(topo::NodeId from, topo::NodeId to, std::size_t bytes,
                   TrafficClass traffic_class, std::function<void()> on_delivery) {
  const auto cls = static_cast<std::size_t>(traffic_class);
  GEORED_ENSURE(cls < kTrafficClassCount, "invalid traffic class");
  stats_.bytes[cls] += bytes;
  stats_.messages[cls] += 1;

  double delay = from == to ? 0.0 : topology_.rtt_ms(from, to) / 2.0;
  if (config_.bandwidth_bytes_per_ms > 0.0) {
    delay += static_cast<double>(bytes) / config_.bandwidth_bytes_per_ms;
  }
  if (config_.jitter > 0.0 && delay > 0.0) {
    // Deterministic jitter stream independent of caller RNGs.
    const double u =
        static_cast<double>(splitmix64(jitter_state_) >> 11) * 0x1.0p-53;  // [0,1)
    delay *= 1.0 + config_.jitter * (2.0 * u - 1.0);
  }
  simulator_.schedule_after(delay, std::move(on_delivery));
}

}  // namespace geored::sim
