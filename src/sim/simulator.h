// Discrete-event simulation engine.
//
// A Simulator owns a virtual clock and an event queue. Events scheduled for
// the same instant run in scheduling order (FIFO tie-break), which keeps
// whole simulations deterministic. The engine is single-threaded by design:
// wall-clock parallelism across *runs* (different seeds) is how experiments
// scale, not parallelism within a run.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace geored::sim {

/// Virtual time in milliseconds since simulation start.
using SimTime = double;

class Simulator {
 public:
  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (>= now).
  void schedule_at(SimTime t, std::function<void()> fn);

  /// Schedules `fn` after `delay` (>= 0) milliseconds.
  void schedule_after(SimTime delay, std::function<void()> fn);

  /// Executes the next event. Returns false when the queue is empty.
  bool step();

  /// Runs until the queue empties or stop() is called; returns the number of
  /// events processed.
  std::size_t run();

  /// Processes all events with time <= `t`, then advances the clock to `t`.
  std::size_t run_until(SimTime t);

  /// Makes run()/run_until() return after the current event completes.
  void stop() { stopped_ = true; }

  std::size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Binary heap managed with std::push_heap/pop_heap rather than
  /// std::priority_queue: pop_heap moves the winning event to the back, so
  /// step() can move its std::function out instead of copying it (top() only
  /// offers const access). The (time, seq) comparator makes heap order
  /// deterministic regardless of internal layout.
  std::vector<Event> queue_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  bool stopped_ = false;
};

}  // namespace geored::sim
