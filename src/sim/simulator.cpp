#include "sim/simulator.h"

#include <algorithm>
#include <utility>

#include "common/ensure.h"

namespace geored::sim {

void Simulator::schedule_at(SimTime t, std::function<void()> fn) {
  GEORED_ENSURE(t >= now_, "cannot schedule an event in the past");
  GEORED_ENSURE(static_cast<bool>(fn), "cannot schedule a null event");
  queue_.push_back({t, next_seq_++, std::move(fn)});
  std::push_heap(queue_.begin(), queue_.end(), Later{});
}

void Simulator::schedule_after(SimTime delay, std::function<void()> fn) {
  GEORED_ENSURE(delay >= 0.0, "event delay must be non-negative");
  schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // pop_heap shifts the winning event to the back, from where it is *moved*
  // out before erasure — per-event std::function copies (heap-allocating for
  // any capturing callback) were the queue's dominant cost. The event must
  // leave the queue before it runs so the callback may schedule freely.
  std::pop_heap(queue_.begin(), queue_.end(), Later{});
  Event event = std::move(queue_.back());
  queue_.pop_back();
  now_ = event.time;
  event.fn();
  return true;
}

std::size_t Simulator::run() {
  stopped_ = false;
  std::size_t processed = 0;
  while (!stopped_ && step()) ++processed;
  return processed;
}

std::size_t Simulator::run_until(SimTime t) {
  GEORED_ENSURE(t >= now_, "cannot run to a time in the past");
  stopped_ = false;
  std::size_t processed = 0;
  while (!stopped_ && !queue_.empty() && queue_.front().time <= t) {
    step();
    ++processed;
  }
  if (!stopped_) now_ = t;
  return processed;
}

}  // namespace geored::sim
