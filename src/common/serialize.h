// Minimal binary serialization used to ship clustering summaries between
// simulated data centers and to account for network bandwidth (Table II).
//
// The format is little-endian, fixed-width, and self-contained; it is not a
// general-purpose wire format but is sufficient to measure realistic message
// sizes for the paper's overhead comparison.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/ensure.h"

namespace geored {

/// Raised when decoded bytes cannot be a well-formed geored wire message:
/// a read past the end of the buffer, a length field larger than the bytes
/// that follow it, or field values no writer could have produced. Derives
/// from std::invalid_argument so existing recovery paths keep working, while
/// transport code (src/net/) can distinguish corrupt frames from API misuse.
class WireFormatError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Append-only binary writer.
class ByteWriter {
 public:
  void write_u32(std::uint32_t v) { write_raw(&v, sizeof v); }
  void write_u64(std::uint64_t v) { write_raw(&v, sizeof v); }
  void write_f64(double v) { write_raw(&v, sizeof v); }

  void write_f64_vector(const std::vector<double>& values) {
    write_u32(static_cast<std::uint32_t>(values.size()));
    for (double v : values) write_f64(v);
  }

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::size_t size() const { return bytes_.size(); }

 private:
  void write_raw(const void* data, std::size_t len) {
    const std::size_t offset = bytes_.size();
    bytes_.resize(offset + len);
    std::memcpy(bytes_.data() + offset, data, len);
  }

  std::vector<std::uint8_t> bytes_;
};

/// Sequential binary reader over a byte vector produced by ByteWriter.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  std::uint32_t read_u32() { return read_raw<std::uint32_t>(); }
  std::uint64_t read_u64() { return read_raw<std::uint64_t>(); }
  double read_f64() { return read_raw<double>(); }

  std::vector<double> read_f64_vector() {
    const std::uint32_t n = read_u32();
    // Validate the count against the bytes actually present before sizing
    // the vector: a corrupt length prefix must throw, not allocate gigabytes.
    if (static_cast<std::size_t>(n) * sizeof(double) > remaining()) {
      throw WireFormatError("ByteReader: f64 vector length " + std::to_string(n) +
                            " exceeds the " + std::to_string(remaining()) +
                            " bytes remaining (truncated or corrupt frame)");
    }
    std::vector<double> values(n);
    for (auto& v : values) v = read_f64();
    return values;
  }

  bool exhausted() const { return offset_ == bytes_.size(); }
  std::size_t remaining() const { return bytes_.size() - offset_; }

 private:
  template <typename T>
  T read_raw() {
    if (offset_ + sizeof(T) > bytes_.size()) {
      throw WireFormatError("ByteReader: read past end of buffer (truncated frame)");
    }
    T value;
    std::memcpy(&value, bytes_.data() + offset_, sizeof(T));
    offset_ += sizeof(T);
    return value;
  }

  const std::vector<std::uint8_t>& bytes_;
  std::size_t offset_ = 0;
};

}  // namespace geored
