#include "common/significance.h"

#include <cmath>

#include "common/ensure.h"
#include "common/stats.h"

namespace geored {

double normal_two_sided_p(double z) {
  // P(|Z| > |z|) = erfc(|z| / sqrt(2)).
  return std::erfc(std::abs(z) / std::sqrt(2.0));
}

TTestResult paired_t_test(const std::vector<double>& first,
                          const std::vector<double>& second) {
  GEORED_ENSURE(first.size() == second.size(), "paired test requires aligned samples");
  GEORED_ENSURE(first.size() >= 2, "paired test requires at least two pairs");
  OnlineStats differences;
  for (std::size_t i = 0; i < first.size(); ++i) differences.add(first[i] - second[i]);

  TTestResult result;
  result.mean_difference = differences.mean();
  result.degrees_of_freedom = static_cast<double>(first.size() - 1);
  const double stderr_mean =
      differences.stddev() / std::sqrt(static_cast<double>(first.size()));
  if (stderr_mean == 0.0) {
    // All differences identical: either exactly zero (p = 1) or a constant
    // nonzero shift (p -> 0).
    result.t_statistic = result.mean_difference == 0.0
                             ? 0.0
                             : std::copysign(1e12, result.mean_difference);
    result.p_value = result.mean_difference == 0.0 ? 1.0 : 0.0;
    return result;
  }
  result.t_statistic = result.mean_difference / stderr_mean;
  result.p_value = normal_two_sided_p(result.t_statistic);
  return result;
}

TTestResult welch_t_test(const std::vector<double>& first,
                         const std::vector<double>& second) {
  GEORED_ENSURE(first.size() >= 2 && second.size() >= 2,
                "welch test requires at least two samples per side");
  OnlineStats a, b;
  for (const double v : first) a.add(v);
  for (const double v : second) b.add(v);
  const double na = static_cast<double>(a.count());
  const double nb = static_cast<double>(b.count());
  const double var_a = a.variance() / na;
  const double var_b = b.variance() / nb;

  TTestResult result;
  result.mean_difference = a.mean() - b.mean();
  const double pooled = var_a + var_b;
  if (pooled == 0.0) {
    result.t_statistic =
        result.mean_difference == 0.0 ? 0.0 : std::copysign(1e12, result.mean_difference);
    result.p_value = result.mean_difference == 0.0 ? 1.0 : 0.0;
    result.degrees_of_freedom = na + nb - 2.0;
    return result;
  }
  result.t_statistic = result.mean_difference / std::sqrt(pooled);
  // Welch–Satterthwaite degrees of freedom.
  const double df_denominator =
      var_a * var_a / (na - 1.0) + var_b * var_b / (nb - 1.0);
  result.degrees_of_freedom = pooled * pooled / df_denominator;
  result.p_value = normal_two_sided_p(result.t_statistic);
  return result;
}

}  // namespace geored
