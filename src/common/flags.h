// A small command-line flag parser for the geored tools.
//
// Supports --name=value and --name value forms, typed accessors with
// defaults, boolean flags (--verbose / --verbose=false), `--` to end flag
// parsing, and generated help text. Unknown flags are errors — typos should
// fail loudly in experiment tooling.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace geored {

class FlagParser {
 public:
  explicit FlagParser(std::string program, std::string description);

  /// Registers a flag. Names must be unique and non-empty.
  void add_string(const std::string& name, std::string default_value,
                  std::string description);
  void add_int(const std::string& name, std::int64_t default_value, std::string description);
  void add_double(const std::string& name, double default_value, std::string description);
  void add_bool(const std::string& name, bool default_value, std::string description);

  /// Parses arguments (excluding argv[0]); returns positional arguments.
  /// Throws std::invalid_argument on unknown flags or malformed values.
  /// "--help" sets help_requested() instead of failing.
  std::vector<std::string> parse(const std::vector<std::string>& args);

  bool help_requested() const { return help_requested_; }

  std::string get_string(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// True if the flag was explicitly set on the command line.
  bool is_set(const std::string& name) const;

  /// Usage text listing every flag with its default and description.
  std::string help() const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };
  struct Flag {
    Type type;
    std::string value;  // current textual value
    std::string default_value;
    std::string description;
    bool set = false;
  };

  void add_flag(const std::string& name, Type type, std::string default_value,
                std::string description);
  Flag& flag_for(const std::string& name, Type type);
  const Flag& flag_for(const std::string& name, Type type) const;
  void assign(const std::string& name, const std::string& value);

  std::string program_;
  std::string description_;
  std::map<std::string, Flag> flags_;
  bool help_requested_ = false;
};

}  // namespace geored
