#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/ensure.h"

namespace geored {

void OnlineStats::add(double value) {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double combined = n1 + n2;
  mean_ += delta * n2 / combined;
  m2_ += other.m2_ + delta * delta * n1 * n2 / combined;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::population_variance() const {
  if (count_ == 0) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double OnlineStats::population_stddev() const { return std::sqrt(population_variance()); }

double percentile_sorted(const std::vector<double>& sorted_values, double q) {
  GEORED_ENSURE(!sorted_values.empty(), "percentile of an empty sample");
  GEORED_ENSURE(q >= 0.0 && q <= 1.0, "percentile quantile must be in [0,1]");
  if (sorted_values.size() == 1) return sorted_values.front();
  const double pos = q * static_cast<double>(sorted_values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac;
}

Summary summarize(std::vector<double> values) {
  Summary summary;
  if (values.empty()) return summary;
  std::sort(values.begin(), values.end());
  OnlineStats stats;
  for (double v : values) stats.add(v);
  summary.count = stats.count();
  summary.mean = stats.mean();
  summary.stddev = stats.stddev();
  summary.min = stats.min();
  summary.max = stats.max();
  summary.p50 = percentile_sorted(values, 0.50);
  summary.p90 = percentile_sorted(values, 0.90);
  summary.p99 = percentile_sorted(values, 0.99);
  if (summary.count >= 2) {
    summary.ci95_halfwidth =
        1.96 * summary.stddev / std::sqrt(static_cast<double>(summary.count));
  }
  return summary;
}

std::string Summary::to_string() const {
  std::ostringstream os;
  os << "n=" << count << " mean=" << mean << " ±" << ci95_halfwidth
     << " sd=" << stddev << " min=" << min << " p50=" << p50 << " p90=" << p90
     << " p99=" << p99 << " max=" << max;
  return os.str();
}

}  // namespace geored
