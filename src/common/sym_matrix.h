// Symmetric dense matrix with zero diagonal, used for pairwise RTTs.
//
// Only the strict upper triangle is stored (n*(n-1)/2 doubles), halving
// memory for the 226x226 (and larger) latency matrices the simulator carries.
#pragma once

#include <cstddef>
#include <vector>

#include "common/ensure.h"

namespace geored {

class SymMatrix {
 public:
  SymMatrix() = default;

  /// n x n symmetric matrix, all entries (and the diagonal) zero.
  explicit SymMatrix(std::size_t n) : n_(n), data_(n * (n - (n > 0 ? 1 : 0)) / 2, 0.0) {}

  std::size_t size() const { return n_; }

  /// Reads entry (i, j). The diagonal is always zero.
  double at(std::size_t i, std::size_t j) const {
    GEORED_ENSURE(i < n_ && j < n_, "SymMatrix index out of range");
    if (i == j) return 0.0;
    return data_[index(i, j)];
  }

  /// Sets entry (i, j) == (j, i). Requires i != j.
  void set(std::size_t i, std::size_t j, double value) {
    GEORED_ENSURE(i < n_ && j < n_, "SymMatrix index out of range");
    GEORED_ENSURE(i != j, "SymMatrix diagonal is fixed at zero");
    data_[index(i, j)] = value;
  }

  /// Raw triangular storage (row-major upper triangle), for serialization.
  const std::vector<double>& raw() const { return data_; }
  std::vector<double>& raw() { return data_; }

 private:
  std::size_t index(std::size_t i, std::size_t j) const {
    if (i > j) std::swap(i, j);
    // Offset of row i's strict upper triangle, then column displacement.
    return i * n_ - i * (i + 1) / 2 + (j - i - 1);
  }

  std::size_t n_ = 0;
  std::vector<double> data_;
};

}  // namespace geored
