// Bump-allocated scratch memory with epoch (caller-scoped) lifetime.
//
// The hot per-epoch paths — the Lloyd/Hamerly iterations, k-means++
// seeding, and the evaluator node-delay staging — each used to allocate a
// handful of std::vector<double> buffers per call. At million-client
// scales those calls run thousands of times per epoch and the allocations
// become a measurable tax (and an allocator contention point under the
// pool). An Arena hands out pointer-bumped spans from a few large blocks;
// a rewind returns every span at once while keeping the blocks, so the
// steady state after the first epoch is allocation-free.
//
// Rules (see docs/performance.md, "Epoch arenas"):
//   - Spans are uninitialized storage for trivially-destructible types.
//     The caller fills them; nothing is ever destroyed.
//   - A span's lifetime ends at the enclosing ArenaScope's destruction
//     (or an explicit rewind/reset). Never store an arena pointer in a
//     structure that outlives the scope — results that escape a call
//     (e.g. the assignment vector moved into a KMeansResult) stay on
//     ordinary heap vectors.
//   - epoch_arena() is thread_local: scratch taken from it never crosses
//     threads, so no synchronization is needed or provided. Code running
//     inside ThreadPool chunks uses the pool thread's own arena (or plain
//     locals), never the submitting thread's.
//   - Scopes nest: an inner ArenaScope rewinds to its own mark, leaving
//     the outer scope's spans intact.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#include "common/ensure.h"

namespace geored {

class Arena {
 public:
  /// First block size; later blocks double (geometric growth keeps the
  /// block count logarithmic in peak usage).
  static constexpr std::size_t kDefaultBlockBytes = std::size_t{64} * 1024;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// A rewind point: everything allocated after mark() is released by the
  /// matching rewind(), with block capacity retained.
  struct Mark {
    std::size_t block = 0;
    std::size_t offset = 0;
  };

  Mark mark() const { return Mark{block_, offset_}; }

  void rewind(Mark m) {
    block_ = m.block;
    offset_ = m.offset;
  }

  void reset() { rewind(Mark{}); }

  /// Uninitialized storage for `bytes` bytes at `align` alignment.
  /// Zero-byte requests return a valid (dangling-safe, unique) pointer.
  void* allocate(std::size_t bytes, std::size_t align) {
    GEORED_ENSURE(align > 0 && (align & (align - 1)) == 0,
                  "Arena alignment must be a power of two");
    while (block_ < blocks_.size()) {
      const std::size_t aligned = align_up(offset_, align);
      if (aligned + bytes <= blocks_[block_].size) {
        offset_ = aligned + bytes;
        return blocks_[block_].data.get() + aligned;
      }
      ++block_;
      offset_ = 0;
    }
    add_block(bytes + align);
    const std::size_t aligned = align_up(offset_, align);
    offset_ = aligned + bytes;
    return blocks_[block_].data.get() + aligned;
  }

  /// Uninitialized span of `count` objects of T. T must be trivially
  /// destructible — the arena never runs destructors.
  template <typename T>
  T* allocate_span(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena spans are never destroyed; T must not need it");
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  /// Total bytes across all blocks (capacity, not live usage).
  std::size_t capacity_bytes() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  static std::size_t align_up(std::size_t v, std::size_t align) {
    return (v + align - 1) & ~(align - 1);
  }

  void add_block(std::size_t min_bytes) {
    std::size_t size = blocks_.empty() ? kDefaultBlockBytes : blocks_.back().size * 2;
    if (size < min_bytes) size = min_bytes;
    blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size});
    block_ = blocks_.size() - 1;
    offset_ = 0;
  }

  std::vector<Block> blocks_;
  std::size_t block_ = 0;   // index of the block allocations come from
  std::size_t offset_ = 0;  // bump offset within that block
};

/// The calling thread's scratch arena. Thread-local by construction, so
/// spans from it are single-thread-owned and need no locking; capacity
/// persists for the thread's lifetime, making steady-state epochs
/// allocation-free.
inline Arena& epoch_arena() {
  thread_local Arena arena;
  return arena;
}

/// RAII rewind: marks the arena at construction and rewinds at scope exit,
/// releasing every span taken through it (or directly from the arena) in
/// between. The standard way to borrow epoch_arena() for one call.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena) : arena_(arena), mark_(arena.mark()) {}
  ArenaScope() : ArenaScope(epoch_arena()) {}
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;
  ~ArenaScope() { arena_.rewind(mark_); }

  Arena& arena() { return arena_; }

  template <typename T>
  T* span(std::size_t count) {
    return arena_.allocate_span<T>(count);
  }

 private:
  Arena& arena_;
  Arena::Mark mark_;
};

}  // namespace geored
