#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/ensure.h"

namespace geored {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
  // All-zero state would lock xoshiro at zero forever; SplitMix64 cannot
  // produce four zero outputs in a row, but guard against it defensively.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits into [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  GEORED_ENSURE(lo <= hi, "uniform(lo,hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::below(std::uint64_t n) {
  GEORED_ENSURE(n > 0, "below(n) requires n > 0");
  // Lemire's rejection method for an unbiased bounded draw.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::integer(std::int64_t lo, std::int64_t hi) {
  GEORED_ENSURE(lo <= hi, "integer(lo,hi) requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::exponential(double rate) {
  GEORED_ENSURE(rate > 0, "exponential(rate) requires rate > 0");
  // 1 - uniform() is in (0,1], so the log argument is never zero.
  return -std::log(1.0 - uniform()) / rate;
}

bool Rng::bernoulli(double p) { return uniform() < std::clamp(p, 0.0, 1.0); }

std::uint64_t Rng::poisson(double mean) {
  GEORED_ENSURE(mean >= 0.0, "poisson mean must be non-negative");
  if (mean == 0.0) return 0;
  if (mean > 64.0) {
    // Normal approximation with continuity correction; fine for our use
    // (expected access counts), where mean is large and tails are unused.
    const double value = normal(mean, std::sqrt(mean));
    return value <= 0.0 ? 0 : static_cast<std::uint64_t>(value + 0.5);
  }
  const double limit = std::exp(-mean);
  std::uint64_t count = 0;
  double product = uniform();
  while (product > limit) {
    ++count;
    product *= uniform();
  }
  return count;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  return weighted_index(weights.data(), weights.size());
}

std::size_t Rng::weighted_index(const double* weights, std::size_t n) {
  GEORED_ENSURE(n > 0, "weighted_index requires a non-empty weight vector");
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    GEORED_ENSURE(weights[i] >= 0.0, "weights must be non-negative");
    total += weights[i];
  }
  GEORED_ENSURE(total > 0.0, "weighted_index requires a positive total weight");
  double target = uniform() * total;
  for (std::size_t i = 0; i < n; ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return n - 1;  // numeric edge: target landed exactly on total
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {  // lint: no-ensure (total)
  std::vector<std::size_t> result(n);
  std::iota(result.begin(), result.end(), std::size_t{0});
  for (std::size_t i = n; i > 1; --i) {
    std::swap(result[i - 1], result[below(i)]);
  }
  return result;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  GEORED_ENSURE(k <= n, "cannot sample more elements than the population holds");
  // Partial Fisher-Yates over an index vector: O(n) setup, O(k) swaps.
  std::vector<std::size_t> pool(n);
  std::iota(pool.begin(), pool.end(), std::size_t{0});
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + below(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

Rng Rng::fork(std::uint64_t stream) const {
  std::uint64_t s = seed_;
  // Mix the stream id through SplitMix64 twice so nearby stream ids do not
  // yield nearby seeds.
  std::uint64_t mix = splitmix64(s) ^ (stream * 0xda942042e4dd58b5ULL);
  return Rng(splitmix64(mix));
}

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  GEORED_ENSURE(n >= 1, "ZipfSampler requires n >= 1");
  GEORED_ENSURE(s >= 0.0, "ZipfSampler requires exponent s >= 0");
  cumulative_.resize(n);
  double running = 0.0;
  for (std::size_t rank = 0; rank < n; ++rank) {
    running += 1.0 / std::pow(static_cast<double>(rank + 1), s);
    cumulative_[rank] = running;
  }
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double target = rng.uniform() * cumulative_.back();
  const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), target);
  return static_cast<std::size_t>(std::distance(cumulative_.begin(), it));
}

}  // namespace geored
