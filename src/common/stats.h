// Streaming and batch statistics used throughout the evaluation harness.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace geored {

/// Numerically stable single-pass accumulator (Welford) for mean / variance,
/// plus min and max. Constant memory; suitable for millions of samples.
class OnlineStats {
 public:
  void add(double value);

  /// Merges another accumulator into this one (parallel Welford combination).
  void merge(const OnlineStats& other);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }

  /// Sample variance (n-1 denominator); zero for fewer than two samples.
  double variance() const;
  double stddev() const;

  /// Population variance (n denominator); zero for no samples. This is the
  /// E[X^2] - E[X]^2 form used by the paper's micro-cluster radius test.
  double population_variance() const;
  double population_stddev() const;

  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Batch summary of a sample: mean, stddev, extremes and chosen percentiles.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;

  /// Half-width of the 95% normal-approximation confidence interval of the
  /// mean (1.96 * stddev / sqrt(n)); zero for fewer than two samples.
  double ci95_halfwidth = 0.0;

  std::string to_string() const;
};

/// Computes a Summary over a sample (the input is copied and sorted).
Summary summarize(std::vector<double> values);

/// Linear-interpolation percentile of a sorted sample, q in [0,1].
double percentile_sorted(const std::vector<double>& sorted_values, double q);

}  // namespace geored
