#include "common/nelder_mead.h"

#include <algorithm>
#include <cmath>

#include "common/ensure.h"

namespace geored {

namespace {

std::vector<double> axpy(const std::vector<double>& a, double s, const std::vector<double>& b) {
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + s * (b[i] - a[i]);
  return out;
}

}  // namespace

NelderMeadResult nelder_mead(const std::function<double(const std::vector<double>&)>& objective,
                             std::vector<double> start, const NelderMeadOptions& options) {
  GEORED_ENSURE(!start.empty(), "nelder_mead requires a non-empty start point");
  const std::size_t n = start.size();

  // Standard coefficients: reflection, expansion, contraction, shrink.
  constexpr double kAlpha = 1.0;
  constexpr double kGamma = 2.0;
  constexpr double kRho = 0.5;
  constexpr double kSigma = 0.5;

  struct Vertex {
    std::vector<double> x;
    double f;
  };
  std::vector<Vertex> simplex;
  simplex.reserve(n + 1);
  simplex.push_back({start, objective(start)});
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> x = start;
    x[i] += options.initial_step;
    simplex.push_back({x, objective(x)});
  }

  NelderMeadResult result;
  for (result.iterations = 0; result.iterations < options.max_iterations;
       ++result.iterations) {
    std::sort(simplex.begin(), simplex.end(),
              [](const Vertex& a, const Vertex& b) { return a.f < b.f; });
    if (std::abs(simplex.back().f - simplex.front().f) < options.tolerance) {
      result.converged = true;
      break;
    }

    // Centroid of all but the worst vertex.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t v = 0; v < n; ++v) {
      for (std::size_t i = 0; i < n; ++i) centroid[i] += simplex[v].x[i];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    Vertex& worst = simplex.back();
    const std::vector<double> reflected = axpy(centroid, -kAlpha, worst.x);
    const double f_reflected = objective(reflected);

    if (f_reflected < simplex.front().f) {
      const std::vector<double> expanded = axpy(centroid, -kGamma, worst.x);
      const double f_expanded = objective(expanded);
      worst = f_expanded < f_reflected ? Vertex{expanded, f_expanded}
                                       : Vertex{reflected, f_reflected};
    } else if (f_reflected < simplex[n - 1].f) {
      worst = {reflected, f_reflected};
    } else {
      const std::vector<double> contracted = axpy(centroid, kRho, worst.x);
      const double f_contracted = objective(contracted);
      if (f_contracted < worst.f) {
        worst = {contracted, f_contracted};
      } else {
        // Shrink towards the best vertex.
        for (std::size_t v = 1; v <= n; ++v) {
          simplex[v].x = axpy(simplex.front().x, kSigma, simplex[v].x);
          simplex[v].f = objective(simplex[v].x);
        }
      }
    }
  }

  std::sort(simplex.begin(), simplex.end(),
            [](const Vertex& a, const Vertex& b) { return a.f < b.f; });
  result.argmin = simplex.front().x;
  result.min_value = simplex.front().f;
  return result;
}

}  // namespace geored
