// Deterministic pseudo-random number generation for simulations.
//
// Every stochastic component in geored draws from an explicitly seeded Rng so
// that experiments are bit-for-bit reproducible. The generator is
// xoshiro256** (Blackman & Vigna), seeded through SplitMix64, which is both
// faster and statistically stronger than std::mt19937_64 while keeping the
// state small enough to copy freely.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace geored {

/// SplitMix64 step: used to expand a single 64-bit seed into generator state
/// and to derive independent child seeds.
std::uint64_t splitmix64(std::uint64_t& state);

/// Deterministic random number generator (xoshiro256**).
///
/// Satisfies std::uniform_random_bit_generator, so it can also be handed to
/// <random> distributions and std::shuffle.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator whose entire stream is a pure function of `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit value.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t integer(std::int64_t lo, std::int64_t hi);

  /// Standard normal deviate (Marsaglia polar method).
  double normal();

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Exponential deviate with the given rate (mean 1/rate). Requires rate > 0.
  double exponential(double rate);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Poisson deviate with the given mean (>= 0). Uses Knuth's method for
  /// small means and a normal approximation above 64.
  std::uint64_t poisson(double mean);

  /// Samples an index in [0, weights.size()) with probability proportional to
  /// weights[i]. Requires at least one strictly positive weight.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Pointer form for callers whose weights live in borrowed scratch (arena
  /// spans); identical sampling sequence to the vector overload.
  std::size_t weighted_index(const double* weights, std::size_t n);

  /// Fisher-Yates shuffle of an index range [0, n), returned as a vector.
  std::vector<std::size_t> permutation(std::size_t n);

  /// Samples `k` distinct indices from [0, n) uniformly (k <= n).
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  /// Derives an independent child generator; children with different `stream`
  /// values are decorrelated from each other and from the parent.
  Rng fork(std::uint64_t stream) const;

 private:
  std::array<std::uint64_t, 4> state_{};
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
  std::uint64_t seed_ = 0;  // retained so fork() can derive child seeds
};

/// Draws a Zipf-distributed rank in [1, n] with exponent `s` using inverse
/// transform over precomputed cumulative weights. Build once, sample many.
class ZipfSampler {
 public:
  /// Requires n >= 1 and s >= 0 (s == 0 gives the uniform distribution).
  ZipfSampler(std::size_t n, double s);

  /// Returns a rank in [0, n) (0-based; rank 0 is the most popular item).
  std::size_t sample(Rng& rng) const;

  std::size_t size() const { return cumulative_.size(); }

 private:
  std::vector<double> cumulative_;
};

}  // namespace geored
