// A small, work-stealing-free thread pool and the deterministic data-parallel
// primitives built on it.
//
// Design constraints (see docs/performance.md):
//   * Determinism. parallel_for splits [0, n) into one contiguous chunk per
//     pool thread; chunk boundaries depend only on n and the thread count,
//     and each chunk is processed sequentially, so side effects land
//     bit-reproducibly run-to-run at a fixed thread count (at one thread,
//     exactly the sequential loop). parallel_reduce_sum goes further: it
//     always splits into a fixed chunk count, so the summation tree depends
//     only on n and the result is bit-identical at ANY thread count —
//     threads merely decide where each chunk runs.
//   * No work stealing. Chunks are claimed from a shared counter under the
//     pool mutex; which thread runs a chunk never affects where its result
//     lands, so scheduling jitter cannot change output.
//   * Thread count. The global pool is sized by the GEORED_THREADS
//     environment variable, defaulting to std::thread::hardware_concurrency.
//     With one thread the pool spawns no workers and everything runs inline
//     on the caller.
//
// Nested parallelism runs inline: when a chunk body itself calls
// parallel_for / parallel_reduce_sum, the nested call executes sequentially
// on the calling thread, because the pool's threads are already committed
// to the outer task. This keeps outer-level parallelism (e.g. FleetManager
// running one group per task) deadlock-free and bit-identical to the fully
// sequential execution: a nested parallel_for is a single in-order chunk,
// and a nested parallel_reduce_sum walks the same fixed chunk grid in
// ascending order. Directly calling run_chunks from inside a chunk remains
// an error.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace geored {

class ThreadPool {
 public:
  /// Creates a pool that runs work on `threads` threads in total (the
  /// calling thread participates, so `threads - 1` workers are spawned).
  /// 0 means default_thread_count().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads that execute work, including the caller of run_chunks.
  std::size_t thread_count() const { return workers_.size() + 1; }

  /// True when no run_chunks task is in flight on this pool. Safe to call
  /// from any thread, including from inside a chunk body (the pool mutex is
  /// released while chunk bodies run, so this cannot self-deadlock).
  bool idle() GEORED_EXCLUDES(mutex_);

  /// Runs chunk_fn(c) for every c in [0, n) across the pool; the calling
  /// thread participates. Blocks until all chunks finish. If any chunk
  /// throws, the first exception (in completion order) is rethrown here
  /// after the remaining chunks have run.
  void run_chunks(std::size_t n, const std::function<void(std::size_t)>& chunk_fn)
      GEORED_EXCLUDES(mutex_);

  /// GEORED_THREADS environment override if set (clamped to [1, 1024]),
  /// otherwise std::thread::hardware_concurrency() (at least 1).
  static std::size_t default_thread_count();

  /// True while the calling thread is executing a run_chunks chunk (on any
  /// pool). parallel_for / parallel_reduce_sum consult this to run nested
  /// parallelism inline instead of deadlocking on the busy pool.
  static bool in_parallel_chunk();

  /// The process-wide pool used by parallel_for / parallel_reduce_sum,
  /// created on first use with default_thread_count() threads.
  static ThreadPool& global();

  /// Replaces the global pool with one of `threads` threads (0 = default).
  /// Test/bench knob: must not be called while parallel work is in flight
  /// (enforced — replacing a busy pool throws InternalError rather than
  /// destroying a pool that callers still hold a reference to).
  static void set_global_thread_count(std::size_t threads);

 private:
  void worker_loop() GEORED_EXCLUDES(mutex_);
  /// Claims and runs chunks while any remain. Holds mutex_ on entry and
  /// exit; temporarily releases it around each chunk body (which is why a
  /// chunk body may safely call idle(), but never run_chunks on this pool —
  /// the busy/idle protocol below would deadlock the caller on itself).
  void drain() GEORED_REQUIRES(mutex_);

  // The task protocol, all guarded by mutex_: run_chunks publishes
  // task_/num_chunks_ and resets the shared chunk-claim counter next_chunk_;
  // workers and the caller claim chunks under the mutex and bump completed_
  // after each; the caller observes completion via done_cv_ and retires the
  // task by nulling task_. stop_ is the workers' shutdown signal.
  Mutex mutex_;
  CondVar task_cv_;  // workers: work available or stop
  CondVar done_cv_;  // caller: all chunks completed
  const std::function<void(std::size_t)>* task_ GEORED_GUARDED_BY(mutex_) = nullptr;
  std::size_t num_chunks_ GEORED_GUARDED_BY(mutex_) = 0;
  std::size_t next_chunk_ GEORED_GUARDED_BY(mutex_) = 0;
  std::size_t completed_ GEORED_GUARDED_BY(mutex_) = 0;
  bool stop_ GEORED_GUARDED_BY(mutex_) = false;
  std::exception_ptr error_ GEORED_GUARDED_BY(mutex_);
  std::vector<std::thread> workers_;
};

/// Runs body(begin, end) over contiguous chunks covering [0, n), one chunk
/// per global-pool thread. Runs inline (one chunk) when n < min_parallel or
/// the pool has a single thread. Deterministic as described above.
void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t min_parallel = 1);

/// Sums body(begin, end) partials over a FIXED grid of contiguous chunks
/// covering [0, n), combining them in ascending chunk order. Chunk
/// boundaries depend only on n, so the result is bit-identical at any
/// thread count (and under nested/inline execution) — the determinism pin
/// the perf-smoke CI asserts at bench scale. When n < min_parallel the call
/// is exactly `body(0, n)`, byte-identical to the sequential accumulation.
double parallel_reduce_sum(std::size_t n,
                           const std::function<double(std::size_t, std::size_t)>& body,
                           std::size_t min_parallel = 1);

}  // namespace geored
