#include "common/flags.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "common/ensure.h"

namespace geored {

namespace {

std::string type_name(int type) {
  switch (type) {
    case 0:
      return "string";
    case 1:
      return "int";
    case 2:
      return "double";
    case 3:
      return "bool";
  }
  return "?";
}

bool parse_bool(const std::string& text) {
  if (text == "true" || text == "1" || text == "yes") return true;
  if (text == "false" || text == "0" || text == "no") return false;
  throw std::invalid_argument("invalid boolean value: " + text);
}

}  // namespace

FlagParser::FlagParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void FlagParser::add_flag(const std::string& name, Type type, std::string default_value,
                          std::string description) {
  GEORED_ENSURE(!name.empty(), "flag names must be non-empty");
  GEORED_ENSURE(!flags_.contains(name), "duplicate flag: " + name);
  flags_.emplace(name, Flag{type, default_value, std::move(default_value),
                            std::move(description), false});
}

void FlagParser::add_string(const std::string& name, std::string default_value,
                            std::string description) {
  add_flag(name, Type::kString, std::move(default_value), std::move(description));
}

void FlagParser::add_int(const std::string& name, std::int64_t default_value,
                         std::string description) {
  add_flag(name, Type::kInt, std::to_string(default_value), std::move(description));
}

void FlagParser::add_double(const std::string& name, double default_value,
                            std::string description) {
  std::ostringstream os;
  os << default_value;
  add_flag(name, Type::kDouble, os.str(), std::move(description));
}

void FlagParser::add_bool(const std::string& name, bool default_value,
                          std::string description) {
  add_flag(name, Type::kBool, default_value ? "true" : "false", std::move(description));
}

void FlagParser::assign(const std::string& name, const std::string& value) {
  const auto it = flags_.find(name);
  if (it == flags_.end()) throw std::invalid_argument("unknown flag: --" + name);
  Flag& flag = it->second;
  // Validate eagerly so errors point at the offending flag.
  try {
    switch (flag.type) {
      case Type::kString:
        break;
      case Type::kInt:
        (void)std::stoll(value);
        break;
      case Type::kDouble:
        (void)std::stod(value);
        break;
      case Type::kBool:
        (void)parse_bool(value);
        break;
    }
  } catch (const std::exception&) {
    throw std::invalid_argument("invalid value for --" + name + ": '" + value + "' (" +
                                type_name(static_cast<int>(flag.type)) + " expected)");
  }
  flag.value = value;
  flag.set = true;
}

std::vector<std::string> FlagParser::parse(const std::vector<std::string>& args) {
  std::vector<std::string> positional;
  bool flags_done = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (flags_done || !arg.starts_with("--")) {
      positional.push_back(arg);
      continue;
    }
    if (arg == "--") {
      flags_done = true;
      continue;
    }
    std::string body = arg.substr(2);
    if (body == "help") {
      help_requested_ = true;
      continue;
    }
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      assign(body.substr(0, eq), body.substr(eq + 1));
      continue;
    }
    // --name value, except bool flags which may stand alone.
    const auto it = flags_.find(body);
    if (it == flags_.end()) throw std::invalid_argument("unknown flag: --" + body);
    if (it->second.type == Type::kBool) {
      // A following "true"/"false" is consumed; otherwise the flag is set.
      if (i + 1 < args.size() &&
          (args[i + 1] == "true" || args[i + 1] == "false")) {
        assign(body, args[++i]);
      } else {
        assign(body, "true");
      }
      continue;
    }
    if (i + 1 >= args.size()) {
      throw std::invalid_argument("flag --" + body + " requires a value");
    }
    assign(body, args[++i]);
  }
  return positional;
}

const FlagParser::Flag& FlagParser::flag_for(const std::string& name, Type type) const {
  const auto it = flags_.find(name);
  GEORED_ENSURE(it != flags_.end(), "flag was never registered: " + name);
  GEORED_ENSURE(it->second.type == type, "flag accessed with the wrong type: " + name);
  return it->second;
}

std::string FlagParser::get_string(const std::string& name) const {
  return flag_for(name, Type::kString).value;
}

std::int64_t FlagParser::get_int(const std::string& name) const {
  return std::stoll(flag_for(name, Type::kInt).value);
}

double FlagParser::get_double(const std::string& name) const {
  return std::stod(flag_for(name, Type::kDouble).value);
}

bool FlagParser::get_bool(const std::string& name) const {
  return parse_bool(flag_for(name, Type::kBool).value);
}

bool FlagParser::is_set(const std::string& name) const {
  const auto it = flags_.find(name);
  GEORED_ENSURE(it != flags_.end(), "flag was never registered: " + name);
  return it->second.set;
}

std::string FlagParser::help() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nflags:\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (" << type_name(static_cast<int>(flag.type))
       << ", default: " << (flag.default_value.empty() ? "\"\"" : flag.default_value)
       << ")\n      " << flag.description << '\n';
  }
  return os.str();
}

}  // namespace geored
