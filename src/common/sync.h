// Capability-annotated synchronization primitives: the only place in src/
// that may name std::mutex or std::condition_variable directly (enforced by
// tools/geored_lint.py, check naked-sync).
//
// Every lock relationship in geored is declared to Clang's Thread Safety
// Analysis (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) through
// the GEORED_* macros below, and Clang builds compile with
// `-Wthread-safety -Werror=thread-safety` (CMake adds the flags whenever the
// compiler is Clang; GCC builds see plain std primitives and the macros
// expand to nothing). The result: touching a GEORED_GUARDED_BY field without
// its mutex, or calling a GEORED_REQUIRES function without holding the lock,
// is a compile error — not a hope that the tsan job's schedule hits it.
// tests/common/sync_negative/ keeps the analysis itself honest by asserting
// that representative violations fail to compile.
//
// Usage pattern:
//
//   class Account {
//    public:
//     void deposit(double amount) GEORED_EXCLUDES(mutex_) {
//       const MutexLock lock(mutex_);
//       balance_ += amount;
//     }
//    private:
//     void audit() GEORED_REQUIRES(mutex_);  // caller must hold mutex_
//     Mutex mutex_;
//     double balance_ GEORED_GUARDED_BY(mutex_) = 0.0;
//   };
//
// Condition waits are written as explicit while-loops over the guarded
// predicate (`while (!ready_) cv_.wait(mutex_);`) rather than the
// std::condition_variable predicate overload: a predicate lambda is analyzed
// as an unannotated function and would trip the analysis on every guarded
// read, while the open-coded loop keeps every access inside the annotated
// caller. Spurious-wakeup safety is identical.
#pragma once

#include <condition_variable>  // lint: naked-sync-ok (the one wrapping site)
#include <mutex>               // lint: naked-sync-ok (the one wrapping site)

// Clang exposes the analysis attributes via __attribute__((capability(...)))
// etc.; every other compiler sees empty token soup. The __has_attribute
// probe (rather than a bare __clang__ test) keeps the header correct on
// Clang builds old enough to lack an attribute.
#if defined(__clang__) && defined(__has_attribute)
#define GEORED_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define GEORED_THREAD_ANNOTATION__(x)
#endif

/// Declares a class to be a lockable capability (Mutex below).
#define GEORED_CAPABILITY(x) GEORED_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII class whose lifetime equals a critical section.
#define GEORED_SCOPED_CAPABILITY GEORED_THREAD_ANNOTATION__(scoped_lockable)

/// Field may only be read or written while holding `x`.
#define GEORED_GUARDED_BY(x) GEORED_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer field: the *pointee* may only be touched while holding `x`.
#define GEORED_PT_GUARDED_BY(x) GEORED_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function requires the listed capabilities held on entry (and does not
/// release them).
#define GEORED_REQUIRES(...) \
  GEORED_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Function must NOT be entered holding the listed capabilities (it will
/// acquire them itself; calling with them held would deadlock).
#define GEORED_EXCLUDES(...) GEORED_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define GEORED_ACQUIRE(...) GEORED_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function releases a capability the caller held.
#define GEORED_RELEASE(...) GEORED_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Function attempts the acquisition; the first argument is the return value
/// that means "acquired".
#define GEORED_TRY_ACQUIRE(...) \
  GEORED_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Lock-ordering declarations (deadlock detection).
#define GEORED_ACQUIRED_BEFORE(...) \
  GEORED_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define GEORED_ACQUIRED_AFTER(...) \
  GEORED_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// Function returns a reference to the capability guarding its result.
#define GEORED_RETURN_CAPABILITY(x) GEORED_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch for code the analysis cannot follow (document why at every
/// use site; the lint's job is to keep these rare).
#define GEORED_NO_THREAD_SAFETY_ANALYSIS \
  GEORED_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace geored {

class CondVar;

/// A standard mutex, visible to the analysis as a capability. Non-copyable,
/// non-movable (a capability is an identity).
class GEORED_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GEORED_ACQUIRE() { mu_.lock(); }
  void unlock() GEORED_RELEASE() { mu_.unlock(); }
  bool try_lock() GEORED_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII critical section over a Mutex: acquires in the constructor, releases
/// in the destructor, no manual unlock surface. Temporary releases inside a
/// held section (ThreadPool::drain) operate on the Mutex itself from a
/// GEORED_REQUIRES context instead, which keeps this class's lock state
/// unconditional — the shape the analysis verifies most precisely.
class GEORED_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) GEORED_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() GEORED_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable bound to Mutex. wait() takes the Mutex (not a lock
/// object) so the requirement is statically checkable: callers loop over
/// their guarded predicate while holding the mutex (see the header comment).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mutex`, blocks until notified (or spuriously
  /// woken), and re-acquires `mutex` before returning. The caller re-checks
  /// its predicate in a while-loop as usual.
  void wait(Mutex& mutex) GEORED_REQUIRES(mutex) {
    // Adopt the already-held native mutex for the wait protocol, then
    // release the adoption so the wrapper's ownership stays untouched.
    std::unique_lock<std::mutex> relock(mutex.mu_, std::adopt_lock);
    cv_.wait(relock);
    relock.release();
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace geored
