#include "common/point_set.h"

#include <cmath>
#include <limits>

#include "common/ensure.h"

namespace geored {

PointSet::PointSet(std::size_t dim) : dim_(dim) {}

PointSet PointSet::from_points(const std::vector<Point>& points) {
  PointSet set(points.empty() ? 0 : points.front().dim());
  set.reserve(points.size());
  for (const auto& p : points) set.push_back(p);
  return set;
}

void PointSet::push_back(const Point& p) {
  if (n_ == 0 && dim_ == 0) {
    dim_ = p.dim();
    if (pending_reserve_rows_ > 0 && dim_ > 0) {
      data_.reserve(pending_reserve_rows_ * dim_);
    }
    pending_reserve_rows_ = 0;
  }
  GEORED_ENSURE(p.dim() == dim_, "PointSet rows must share one dimension");
  data_.insert(data_.end(), p.values().begin(), p.values().end());
  ++n_;
}

void PointSet::push_back_row(const double* values, std::size_t dim) {
  if (n_ == 0 && dim_ == 0) {
    dim_ = dim;
    if (pending_reserve_rows_ > 0 && dim_ > 0) {
      data_.reserve(pending_reserve_rows_ * dim_);
    }
    pending_reserve_rows_ = 0;
  }
  GEORED_ENSURE(dim == dim_, "PointSet rows must share one dimension");
  data_.insert(data_.end(), values, values + dim);
  ++n_;
}

void PointSet::append_rows(const double* values, std::size_t rows, std::size_t dim) {
  if (rows == 0) return;
  if (n_ == 0 && dim_ == 0) {
    dim_ = dim;
    if (pending_reserve_rows_ > 0 && dim_ > 0) {
      data_.reserve(pending_reserve_rows_ * dim_);
    }
    pending_reserve_rows_ = 0;
  }
  GEORED_ENSURE(dim == dim_, "PointSet rows must share one dimension");
  data_.insert(data_.end(), values, values + rows * dim);
  n_ += rows;
}

void PointSet::truncate(std::size_t n) {
  GEORED_ENSURE(n <= size(), "PointSet truncate may only shrink");
  data_.resize(n * dim_);
  n_ = n;
}

void PointSet::assign_row(std::size_t i, const Point& p) {
  GEORED_ENSURE(i < size(), "PointSet row index out of range");
  GEORED_ENSURE(p.dim() == dim_, "PointSet rows must share one dimension");
  double* r = mutable_row(i);
  for (std::size_t d = 0; d < dim_; ++d) r[d] = p[d];
}

void PointSet::erase_row(std::size_t i) {
  GEORED_ENSURE(i < size(), "PointSet row index out of range");
  const auto begin = data_.begin() + static_cast<std::ptrdiff_t>(i * dim_);
  data_.erase(begin, begin + static_cast<std::ptrdiff_t>(dim_));
  --n_;
}

Point PointSet::point(std::size_t i) const {
  GEORED_ENSURE(i < size(), "PointSet row index out of range");
  const double* r = row(i);
  return Point(std::vector<double>(r, r + dim_));  // lint: alloc-ok (copy-out accessor)
}

void PointSet::distance_row(const double* query, double* out) const {
  const std::size_t n = size();
  if (n >= simd::kMinSimdRows && dim_ > 0) {
    const simd::Level level = simd::active_level();
    if (level != simd::Level::kScalar) {
      simd::distance_row(data_.data(), n, dim_, query, out, level);
      return;
    }
  }
  for (std::size_t i = 0; i < n; ++i) out[i] = std::sqrt(distance_squared(i, query));
}

void PointSet::distance_row(const Point& query, double* out) const {
  GEORED_ENSURE(query.dim() == dim_, "query dimension mismatch in distance_row");
  distance_row(query.values().data(), out);
}

std::pair<std::size_t, std::size_t> PointSet::pairwise_min_distance(double* dist_sq) const {
  GEORED_ENSURE(size() >= 2, "pairwise_min_distance requires at least two rows");
  std::size_t best_a = 0, best_b = 1;
  double best_dist = std::numeric_limits<double>::infinity();
  const std::size_t n = size();
  const simd::Level level =
      (n >= simd::kMinSimdRows && dim_ > 0) ? simd::active_level() : simd::Level::kScalar;
  if (level != simd::Level::kScalar) {
    // Row a's inner loop scans the contiguous suffix a+1..n-1, which is
    // exactly a nearest_row over that block: the kernel's first-winner
    // local index plus the strict `<` combine across ascending a
    // reproduces the scalar double loop's lexicographic first winner.
    for (std::size_t a = 0; a + 1 < n; ++a) {
      double dist = 0.0;
      const std::size_t local =
          simd::nearest_row(row(a + 1), n - a - 1, dim_, row(a), &dist, level);
      if (dist < best_dist) {
        best_dist = dist;
        best_a = a;
        best_b = a + 1 + local;
      }
    }
    if (dist_sq != nullptr) *dist_sq = best_dist;
    return {best_a, best_b};
  }
  for (std::size_t a = 0; a + 1 < n; ++a) {
    const double* row_a = row(a);
    for (std::size_t b = a + 1; b < n; ++b) {
      const double dist = distance_squared(b, row_a);
      if (dist < best_dist) {
        best_dist = dist;
        best_a = a;
        best_b = b;
      }
    }
  }
  if (dist_sq != nullptr) *dist_sq = best_dist;
  return {best_a, best_b};
}

}  // namespace geored
