// SIMD backends for the PointSet kernels — see point_set_simd.h for the
// design notes and docs/performance.md for the bit-identity argument.
//
// This translation unit is compiled with -ffp-contract=off (set in
// src/common/CMakeLists.txt): target("avx512f") makes FMA instructions
// available to the compiler, and a contracted multiply-add rounds once
// instead of twice, which would break the bit-identity contract. The AVX2
// paths do not strictly need the flag (the target set excludes FMA), but it
// keeps the whole file under one rule.
#include "common/point_set_simd.h"

#include "common/ensure.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace geored::simd {

namespace {

/// Scalar tail shared by every backend: continues the strict-`<`
/// first-winner scan from row `begin` with the running (best, best_dist)
/// state produced by the vector reduction. Also the whole kScalar backend
/// (begin = 0, best = 0, best_dist = +inf).
std::size_t nearest_tail(const double* data, std::size_t n, std::size_t dim,
                         const double* query, std::size_t begin, std::size_t best,
                         double best_dist, double* best_dist_sq) {
  for (std::size_t i = begin; i < n; ++i) {
    const double* r = data + i * dim;
    double total = 0.0;
    for (std::size_t d = 0; d < dim; ++d) {
      const double diff = r[d] - query[d];
      total += diff * diff;
    }
    const bool better = total < best_dist;
    best = better ? i : best;
    best_dist = better ? total : best_dist;
  }
  *best_dist_sq = best_dist;
  return best;
}

void distance_tail(const double* data, std::size_t n, std::size_t dim, const double* query,
                   double* out, std::size_t begin) {
  for (std::size_t i = begin; i < n; ++i) {
    const double* r = data + i * dim;
    double total = 0.0;
    for (std::size_t d = 0; d < dim; ++d) {
      const double diff = r[d] - query[d];
      total += diff * diff;
    }
    out[i] = std::sqrt(total);
  }
}

#if defined(__x86_64__)

/// Rows the vector loop looks ahead when prefetching: far enough to cover
/// the memory latency of one 16-row block at typical dimensions, close
/// enough not to thrash tiny scans. Prefetch is a hint — never a result.
constexpr std::size_t kPrefetchRowsAhead = 64;

/// Horizontal reduction shared by the argmin backends: the global minimum
/// over the lane minima, then the minimum row index among lanes achieving
/// it. Lane minima are never NaN (a NaN distance loses every strict-`<`
/// blend), so the scan below needs no unordered handling. When no lane ever
/// won (n < one block, or every distance NaN/inf) every lane still holds
/// +inf with its initial index, and the minimum initial index is 0 — the
/// same (best = 0, best_dist = +inf) state the scalar scan starts from.
std::size_t reduce_lanes(const double* dists, const long long* idxs, std::size_t lanes,
                         double* best_dist) {
  double m = dists[0];
  for (std::size_t l = 1; l < lanes; ++l) m = dists[l] < m ? dists[l] : m;
  long long best = -1;
  for (std::size_t l = 0; l < lanes; ++l) {
    if (dists[l] == m && (best < 0 || idxs[l] < best)) best = idxs[l];
  }
  if (best < 0) {  // all-NaN lanes cannot happen, but keep the reduction total
    *best_dist = std::numeric_limits<double>::infinity();
    return 0;
  }
  *best_dist = m;
  return static_cast<std::size_t>(best);
}

__attribute__((target("avx512f"))) std::size_t nearest_avx512(const double* data,
                                                              std::size_t n, std::size_t dim,
                                                              const double* query,
                                                              double* best_dist_sq) {
  const __m512d inf = _mm512_set1_pd(std::numeric_limits<double>::infinity());
  __m512d best0 = inf, best1 = inf;
  __m512i idx0 = _mm512_setr_epi64(0, 1, 2, 3, 4, 5, 6, 7);
  __m512i idx1 = _mm512_setr_epi64(8, 9, 10, 11, 12, 13, 14, 15);
  __m512i rows0 = idx0, rows1 = idx1;
  const __m512i step = _mm512_set1_epi64(16);
  const auto d1 = static_cast<long long>(dim);
  const __m512i lane_off =
      _mm512_setr_epi64(0, d1, 2 * d1, 3 * d1, 4 * d1, 5 * d1, 6 * d1, 7 * d1);
  // Full-mask gathers: the unmasked intrinsic leaves its source operand
  // formally undefined (GCC warns under -Werror); the masked form with an
  // all-ones mask emits the identical vgatherqpd.
  const __m512d zero = _mm512_setzero_pd();
  const __mmask8 kFull = static_cast<__mmask8>(0xff);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const char* ahead = reinterpret_cast<const char*>(data + (i + kPrefetchRowsAhead) * dim);
    _mm_prefetch(ahead, _MM_HINT_T0);
    _mm_prefetch(ahead + 64, _MM_HINT_T0);
    _mm_prefetch(ahead + 128, _MM_HINT_T0);
    __m512d acc0 = _mm512_setzero_pd();
    __m512d acc1 = _mm512_setzero_pd();
    const __m512i off0 =
        _mm512_add_epi64(_mm512_set1_epi64(static_cast<long long>(i * dim)), lane_off);
    const __m512i off1 = _mm512_add_epi64(off0, _mm512_set1_epi64(8 * d1));
    for (std::size_t d = 0; d < dim; ++d) {
      const __m512i dd = _mm512_set1_epi64(static_cast<long long>(d));
      const __m512d c0 = _mm512_mask_i64gather_pd(zero, kFull, _mm512_add_epi64(off0, dd), data, 8);
      const __m512d c1 = _mm512_mask_i64gather_pd(zero, kFull, _mm512_add_epi64(off1, dd), data, 8);
      const __m512d qd = _mm512_set1_pd(query[d]);
      const __m512d f0 = _mm512_sub_pd(c0, qd);
      const __m512d f1 = _mm512_sub_pd(c1, qd);
      acc0 = _mm512_add_pd(acc0, _mm512_mul_pd(f0, f0));
      acc1 = _mm512_add_pd(acc1, _mm512_mul_pd(f1, f1));
    }
    const __mmask8 lt0 = _mm512_cmp_pd_mask(acc0, best0, _CMP_LT_OQ);
    best0 = _mm512_mask_mov_pd(best0, lt0, acc0);
    idx0 = _mm512_mask_mov_epi64(idx0, lt0, rows0);
    const __mmask8 lt1 = _mm512_cmp_pd_mask(acc1, best1, _CMP_LT_OQ);
    best1 = _mm512_mask_mov_pd(best1, lt1, acc1);
    idx1 = _mm512_mask_mov_epi64(idx1, lt1, rows1);
    rows0 = _mm512_add_epi64(rows0, step);
    rows1 = _mm512_add_epi64(rows1, step);
  }
  double dists[16];
  long long idxs[16];
  _mm512_storeu_pd(dists, best0);
  _mm512_storeu_pd(dists + 8, best1);
  _mm512_storeu_si512(idxs, idx0);
  _mm512_storeu_si512(idxs + 8, idx1);
  double best_dist = 0.0;
  const std::size_t best = reduce_lanes(dists, idxs, 16, &best_dist);
  return nearest_tail(data, n, dim, query, i, best, best_dist, best_dist_sq);
}

__attribute__((target("avx2"))) std::size_t nearest_avx2(const double* data, std::size_t n,
                                                         std::size_t dim, const double* query,
                                                         double* best_dist_sq) {
  const __m256d inf = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  __m256d best0 = inf, best1 = inf;
  // Row indices ride in double lanes (exact through 2^53 — far beyond any
  // PointSet) so the compare mask can blend them with the same instruction
  // as the distances.
  __m256d idx0 = _mm256_setr_pd(0.0, 1.0, 2.0, 3.0);
  __m256d idx1 = _mm256_setr_pd(4.0, 5.0, 6.0, 7.0);
  __m256d rows0 = idx0, rows1 = idx1;
  const __m256d step = _mm256_set1_pd(8.0);
  const auto d1 = static_cast<long long>(dim);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const char* ahead = reinterpret_cast<const char*>(data + (i + kPrefetchRowsAhead) * dim);
    _mm_prefetch(ahead, _MM_HINT_T0);
    _mm_prefetch(ahead + 64, _MM_HINT_T0);
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    const long long base = static_cast<long long>(i * dim);
    const __m256i off0 = _mm256_set_epi64x(base + 3 * d1, base + 2 * d1, base + d1, base);
    const __m256i off1 = _mm256_add_epi64(off0, _mm256_set1_epi64x(4 * d1));
    for (std::size_t d = 0; d < dim; ++d) {
      const __m256i dd = _mm256_set1_epi64x(static_cast<long long>(d));
      const __m256d c0 = _mm256_i64gather_pd(data, _mm256_add_epi64(off0, dd), 8);
      const __m256d c1 = _mm256_i64gather_pd(data, _mm256_add_epi64(off1, dd), 8);
      const __m256d qd = _mm256_set1_pd(query[d]);
      const __m256d f0 = _mm256_sub_pd(c0, qd);
      const __m256d f1 = _mm256_sub_pd(c1, qd);
      acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(f0, f0));
      acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(f1, f1));
    }
    const __m256d lt0 = _mm256_cmp_pd(acc0, best0, _CMP_LT_OQ);
    best0 = _mm256_blendv_pd(best0, acc0, lt0);
    idx0 = _mm256_blendv_pd(idx0, rows0, lt0);
    const __m256d lt1 = _mm256_cmp_pd(acc1, best1, _CMP_LT_OQ);
    best1 = _mm256_blendv_pd(best1, acc1, lt1);
    idx1 = _mm256_blendv_pd(idx1, rows1, lt1);
    rows0 = _mm256_add_pd(rows0, step);
    rows1 = _mm256_add_pd(rows1, step);
  }
  double dists[8], idx_lanes[8];
  _mm256_storeu_pd(dists, best0);
  _mm256_storeu_pd(dists + 4, best1);
  _mm256_storeu_pd(idx_lanes, idx0);
  _mm256_storeu_pd(idx_lanes + 4, idx1);
  long long idxs[8];
  for (int l = 0; l < 8; ++l) idxs[l] = static_cast<long long>(idx_lanes[l]);
  double best_dist = 0.0;
  const std::size_t best = reduce_lanes(dists, idxs, 8, &best_dist);
  return nearest_tail(data, n, dim, query, i, best, best_dist, best_dist_sq);
}

__attribute__((target("avx512f"))) void distances_avx512(const double* data, std::size_t n,
                                                         std::size_t dim, const double* query,
                                                         double* out) {
  const auto d1 = static_cast<long long>(dim);
  const __m512i lane_off =
      _mm512_setr_epi64(0, d1, 2 * d1, 3 * d1, 4 * d1, 5 * d1, 6 * d1, 7 * d1);
  // Full-mask gathers: the unmasked intrinsic leaves its source operand
  // formally undefined (GCC warns under -Werror); the masked form with an
  // all-ones mask emits the identical vgatherqpd.
  const __m512d zero = _mm512_setzero_pd();
  const __mmask8 kFull = static_cast<__mmask8>(0xff);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const char* ahead = reinterpret_cast<const char*>(data + (i + kPrefetchRowsAhead) * dim);
    _mm_prefetch(ahead, _MM_HINT_T0);
    _mm_prefetch(ahead + 64, _MM_HINT_T0);
    _mm_prefetch(ahead + 128, _MM_HINT_T0);
    __m512d acc0 = _mm512_setzero_pd();
    __m512d acc1 = _mm512_setzero_pd();
    const __m512i off0 =
        _mm512_add_epi64(_mm512_set1_epi64(static_cast<long long>(i * dim)), lane_off);
    const __m512i off1 = _mm512_add_epi64(off0, _mm512_set1_epi64(8 * d1));
    for (std::size_t d = 0; d < dim; ++d) {
      const __m512i dd = _mm512_set1_epi64(static_cast<long long>(d));
      const __m512d c0 = _mm512_mask_i64gather_pd(zero, kFull, _mm512_add_epi64(off0, dd), data, 8);
      const __m512d c1 = _mm512_mask_i64gather_pd(zero, kFull, _mm512_add_epi64(off1, dd), data, 8);
      const __m512d qd = _mm512_set1_pd(query[d]);
      const __m512d f0 = _mm512_sub_pd(c0, qd);
      const __m512d f1 = _mm512_sub_pd(c1, qd);
      acc0 = _mm512_add_pd(acc0, _mm512_mul_pd(f0, f0));
      acc1 = _mm512_add_pd(acc1, _mm512_mul_pd(f1, f1));
    }
    _mm512_storeu_pd(out + i, _mm512_mask_sqrt_pd(zero, kFull, acc0));
    _mm512_storeu_pd(out + i + 8, _mm512_mask_sqrt_pd(zero, kFull, acc1));
  }
  distance_tail(data, n, dim, query, out, i);
}

__attribute__((target("avx2"))) void distances_avx2(const double* data, std::size_t n,
                                                    std::size_t dim, const double* query,
                                                    double* out) {
  const auto d1 = static_cast<long long>(dim);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const char* ahead = reinterpret_cast<const char*>(data + (i + kPrefetchRowsAhead) * dim);
    _mm_prefetch(ahead, _MM_HINT_T0);
    _mm_prefetch(ahead + 64, _MM_HINT_T0);
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    const long long base = static_cast<long long>(i * dim);
    const __m256i off0 = _mm256_set_epi64x(base + 3 * d1, base + 2 * d1, base + d1, base);
    const __m256i off1 = _mm256_add_epi64(off0, _mm256_set1_epi64x(4 * d1));
    for (std::size_t d = 0; d < dim; ++d) {
      const __m256i dd = _mm256_set1_epi64x(static_cast<long long>(d));
      const __m256d c0 = _mm256_i64gather_pd(data, _mm256_add_epi64(off0, dd), 8);
      const __m256d c1 = _mm256_i64gather_pd(data, _mm256_add_epi64(off1, dd), 8);
      const __m256d qd = _mm256_set1_pd(query[d]);
      const __m256d f0 = _mm256_sub_pd(c0, qd);
      const __m256d f1 = _mm256_sub_pd(c1, qd);
      acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(f0, f0));
      acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(f1, f1));
    }
    _mm256_storeu_pd(out + i, _mm256_sqrt_pd(acc0));
    _mm256_storeu_pd(out + i + 4, _mm256_sqrt_pd(acc1));
  }
  distance_tail(data, n, dim, query, out, i);
}

Level probe_detected_level() {
  if (__builtin_cpu_supports("avx512f")) return Level::kAvx512;
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
  return Level::kScalar;
}

#else  // !defined(__x86_64__)

Level probe_detected_level() { return Level::kScalar; }

#endif

Level parse_level_override(Level detected) {
  const char* env = std::getenv("GEORED_SIMD");
  if (env == nullptr || *env == '\0') return detected;
  Level requested = detected;
  if (std::strcmp(env, "scalar") == 0) {
    requested = Level::kScalar;
  } else if (std::strcmp(env, "avx2") == 0) {
    requested = Level::kAvx2;
  } else if (std::strcmp(env, "avx512") == 0) {
    requested = Level::kAvx512;
  }
  // Unknown values keep the detected level; a request above it clamps down
  // (the hardware decides what can run, the variable can only forbid).
  return requested < detected ? requested : detected;
}

}  // namespace

Level detected_level() {
  static const Level level = probe_detected_level();
  return level;
}

Level active_level() {
  static const Level level = parse_level_override(detected_level());
  return level;
}

const char* level_name(Level level) {
  switch (level) {
    case Level::kAvx512:
      return "avx512";
    case Level::kAvx2:
      return "avx2";
    case Level::kScalar:
      break;
  }
  return "scalar";
}

std::size_t nearest_row(const double* data, std::size_t n, std::size_t dim,
                        const double* query, double* best_dist_sq, Level level) {
  GEORED_ENSURE(n >= 1 && best_dist_sq != nullptr,
                "nearest_row requires at least one row and a result slot");
#if defined(__x86_64__)
  if (level == Level::kAvx512 && detected_level() >= Level::kAvx512) {
    return nearest_avx512(data, n, dim, query, best_dist_sq);
  }
  if (level == Level::kAvx2 && detected_level() >= Level::kAvx2) {
    return nearest_avx2(data, n, dim, query, best_dist_sq);
  }
#else
  (void)level;
#endif
  return nearest_tail(data, n, dim, query, 0, 0, std::numeric_limits<double>::infinity(),
                      best_dist_sq);
}

void distance_row(const double* data, std::size_t n, std::size_t dim, const double* query,
                  double* out, Level level) {
  GEORED_ENSURE(n == 0 || out != nullptr, "distance_row needs an output buffer for its rows");
#if defined(__x86_64__)
  if (level == Level::kAvx512 && detected_level() >= Level::kAvx512) {
    distances_avx512(data, n, dim, query, out);
    return;
  }
  if (level == Level::kAvx2 && detected_level() >= Level::kAvx2) {
    distances_avx2(data, n, dim, query, out);
    return;
  }
#else
  (void)level;
#endif
  distance_tail(data, n, dim, query, out, 0);
}

}  // namespace geored::simd
