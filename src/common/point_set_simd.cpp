// SIMD backends for the PointSet kernels — see point_set_simd.h for the
// design notes and docs/performance.md for the bit-identity argument.
//
// This translation unit is compiled with -ffp-contract=off (set in
// src/common/CMakeLists.txt): target("avx512f") makes FMA instructions
// available to the compiler, and a contracted multiply-add rounds once
// instead of twice, which would break the bit-identity contract. The AVX2
// paths do not strictly need the flag (the target set excludes FMA), but it
// keeps the whole file under one rule.
#include "common/point_set_simd.h"

#include "common/ensure.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace geored::simd {

namespace {

/// Scalar tail shared by every backend: continues the strict-`<`
/// first-winner scan from row `begin` with the running (best, best_dist)
/// state produced by the vector reduction. Also the whole kScalar backend
/// (begin = 0, best = 0, best_dist = +inf).
std::size_t nearest_tail(const double* data, std::size_t n, std::size_t dim,
                         const double* query, std::size_t begin, std::size_t best,
                         double best_dist, double* best_dist_sq) {
  for (std::size_t i = begin; i < n; ++i) {
    const double* r = data + i * dim;
    double total = 0.0;
    for (std::size_t d = 0; d < dim; ++d) {
      const double diff = r[d] - query[d];
      total += diff * diff;
    }
    const bool better = total < best_dist;
    best = better ? i : best;
    best_dist = better ? total : best_dist;
  }
  *best_dist_sq = best_dist;
  return best;
}

/// Scalar form of nearest2_batch, shared as the kScalar backend, the
/// sub-block tail of the vector backends, and the wide-dim fallback. The
/// inner scan is PointSet::nearest2_of verbatim (branchless strict-`<`
/// selects in ascending centroid order).
void nearest2_batch_tail(const double* points, std::size_t dim, const std::size_t* indices,
                         std::size_t count, const double* centroids, std::size_t k,
                         std::size_t* out_assign, double* out_best_sq, double* out_second_sq,
                         std::size_t begin) {
  for (std::size_t j = begin; j < count; ++j) {
    const double* q = points + (indices != nullptr ? indices[j] : j) * dim;
    std::size_t best = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    double second_dist = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < k; ++c) {
      const double* r = centroids + c * dim;
      double dist = 0.0;
      for (std::size_t d = 0; d < dim; ++d) {
        const double diff = r[d] - q[d];
        dist += diff * diff;
      }
      const bool better = dist < best_dist;
      const bool runner_up = dist < second_dist;
      second_dist = better ? best_dist : (runner_up ? dist : second_dist);
      best_dist = better ? dist : best_dist;
      best = better ? c : best;
    }
    out_assign[j] = best;
    out_best_sq[j] = best_dist;
    out_second_sq[j] = second_dist;
  }
}

/// Scalar form of assigned_distance_batch (kScalar backend, vector tails,
/// wide-dim fallback): PointSet::distance_squared against the assigned
/// centroid row, per query.
void assigned_distance_tail(const double* points, std::size_t dim, const std::size_t* indices,
                            std::size_t count, const double* centroids,
                            const std::size_t* assign, double* out_dist_sq,
                            std::size_t begin) {
  for (std::size_t j = begin; j < count; ++j) {
    const double* q = points + (indices != nullptr ? indices[j] : j) * dim;
    const double* r = centroids + assign[j] * dim;
    double dist = 0.0;
    for (std::size_t d = 0; d < dim; ++d) {
      const double diff = r[d] - q[d];
      dist += diff * diff;
    }
    out_dist_sq[j] = dist;
  }
}

void distance_tail(const double* data, std::size_t n, std::size_t dim, const double* query,
                   double* out, std::size_t begin) {
  for (std::size_t i = begin; i < n; ++i) {
    const double* r = data + i * dim;
    double total = 0.0;
    for (std::size_t d = 0; d < dim; ++d) {
      const double diff = r[d] - query[d];
      total += diff * diff;
    }
    out[i] = std::sqrt(total);
  }
}

/// Scalar form of hamerly_skip_batch (kScalar backend and vector tail):
/// the reference predicate the vector kernel replays op for op. Resumes
/// from query `begin` with `pending` survivors already written.
std::size_t hamerly_skip_tail(std::size_t count, const std::size_t* assign,
                              const double* best_dist_sq, double* lower, const double* s_half,
                              double delta_max, double delta_second, std::size_t moved_most,
                              double guard_scale, double guard_shift, std::size_t base_index,
                              std::size_t* survivors, std::size_t begin, std::size_t pending) {
  for (std::size_t j = begin; j < count; ++j) {
    const std::size_t a = assign[j];
    const double moved = a == moved_most ? delta_second : delta_max;
    const double lb = (lower[j] - moved) * guard_scale - guard_shift;
    const double s = s_half[a];
    const double z = lb >= s ? lb : s;
    if (z > 0.0 && best_dist_sq[j] < z * z * guard_scale - guard_shift) {
      const double elkan =
          (2.0 * s - std::sqrt(best_dist_sq[j])) * guard_scale - guard_shift;
      lower[j] = lb >= s ? lb : std::max(lb, elkan);
      continue;
    }
    survivors[pending++] = base_index + j;
  }
  return pending;
}

/// Scalar form of weighted_scatter_add (kScalar backend and the narrow-dim
/// fallback): the per-(c, d) accumulation order the vector kernel preserves.
void weighted_scatter_add_tail(const double* points, std::size_t dim,
                               const std::size_t* indices, std::size_t count,
                               const double* weights, const std::size_t* assign, double* sums,
                               double* cluster_weight) {
  for (std::size_t j = 0; j < count; ++j) {
    const std::size_t i = indices != nullptr ? indices[j] : j;
    const std::size_t c = assign != nullptr ? assign[i] : 0;
    const double w = weights[i];
    const double* p = points + i * dim;
    double* sum = sums + c * dim;
    for (std::size_t d = 0; d < dim; ++d) sum[d] += p[d] * w;
    cluster_weight[c] += w;
  }
}

#if defined(__x86_64__)

/// Rows the vector loop looks ahead when prefetching: far enough to cover
/// the memory latency of one 16-row block at typical dimensions, close
/// enough not to thrash tiny scans. Prefetch is a hint — never a result.
constexpr std::size_t kPrefetchRowsAhead = 64;

/// Horizontal reduction shared by the argmin backends: the global minimum
/// over the lane minima, then the minimum row index among lanes achieving
/// it. Lane minima are never NaN (a NaN distance loses every strict-`<`
/// blend), so the scan below needs no unordered handling. When no lane ever
/// won (n < one block, or every distance NaN/inf) every lane still holds
/// +inf with its initial index, and the minimum initial index is 0 — the
/// same (best = 0, best_dist = +inf) state the scalar scan starts from.
std::size_t reduce_lanes(const double* dists, const long long* idxs, std::size_t lanes,
                         double* best_dist) {
  double m = dists[0];
  for (std::size_t l = 1; l < lanes; ++l) m = dists[l] < m ? dists[l] : m;
  long long best = -1;
  for (std::size_t l = 0; l < lanes; ++l) {
    if (dists[l] == m && (best < 0 || idxs[l] < best)) best = idxs[l];
  }
  if (best < 0) {  // all-NaN lanes cannot happen, but keep the reduction total
    *best_dist = std::numeric_limits<double>::infinity();
    return 0;
  }
  *best_dist = m;
  return static_cast<std::size_t>(best);
}

__attribute__((target("avx512f"))) std::size_t nearest_avx512(const double* data,
                                                              std::size_t n, std::size_t dim,
                                                              const double* query,
                                                              double* best_dist_sq) {
  const __m512d inf = _mm512_set1_pd(std::numeric_limits<double>::infinity());
  __m512d best0 = inf, best1 = inf;
  __m512i idx0 = _mm512_setr_epi64(0, 1, 2, 3, 4, 5, 6, 7);
  __m512i idx1 = _mm512_setr_epi64(8, 9, 10, 11, 12, 13, 14, 15);
  __m512i rows0 = idx0, rows1 = idx1;
  const __m512i step = _mm512_set1_epi64(16);
  const auto d1 = static_cast<long long>(dim);
  const __m512i lane_off =
      _mm512_setr_epi64(0, d1, 2 * d1, 3 * d1, 4 * d1, 5 * d1, 6 * d1, 7 * d1);
  // Full-mask gathers: the unmasked intrinsic leaves its source operand
  // formally undefined (GCC warns under -Werror); the masked form with an
  // all-ones mask emits the identical vgatherqpd.
  const __m512d zero = _mm512_setzero_pd();
  const __mmask8 kFull = static_cast<__mmask8>(0xff);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const char* ahead = reinterpret_cast<const char*>(data + (i + kPrefetchRowsAhead) * dim);
    _mm_prefetch(ahead, _MM_HINT_T0);
    _mm_prefetch(ahead + 64, _MM_HINT_T0);
    _mm_prefetch(ahead + 128, _MM_HINT_T0);
    __m512d acc0 = _mm512_setzero_pd();
    __m512d acc1 = _mm512_setzero_pd();
    const __m512i off0 =
        _mm512_add_epi64(_mm512_set1_epi64(static_cast<long long>(i * dim)), lane_off);
    const __m512i off1 = _mm512_add_epi64(off0, _mm512_set1_epi64(8 * d1));
    for (std::size_t d = 0; d < dim; ++d) {
      const __m512i dd = _mm512_set1_epi64(static_cast<long long>(d));
      const __m512d c0 = _mm512_mask_i64gather_pd(zero, kFull, _mm512_add_epi64(off0, dd), data, 8);
      const __m512d c1 = _mm512_mask_i64gather_pd(zero, kFull, _mm512_add_epi64(off1, dd), data, 8);
      const __m512d qd = _mm512_set1_pd(query[d]);
      const __m512d f0 = _mm512_sub_pd(c0, qd);
      const __m512d f1 = _mm512_sub_pd(c1, qd);
      acc0 = _mm512_add_pd(acc0, _mm512_mul_pd(f0, f0));
      acc1 = _mm512_add_pd(acc1, _mm512_mul_pd(f1, f1));
    }
    const __mmask8 lt0 = _mm512_cmp_pd_mask(acc0, best0, _CMP_LT_OQ);
    best0 = _mm512_mask_mov_pd(best0, lt0, acc0);
    idx0 = _mm512_mask_mov_epi64(idx0, lt0, rows0);
    const __mmask8 lt1 = _mm512_cmp_pd_mask(acc1, best1, _CMP_LT_OQ);
    best1 = _mm512_mask_mov_pd(best1, lt1, acc1);
    idx1 = _mm512_mask_mov_epi64(idx1, lt1, rows1);
    rows0 = _mm512_add_epi64(rows0, step);
    rows1 = _mm512_add_epi64(rows1, step);
  }
  double dists[16];
  long long idxs[16];
  _mm512_storeu_pd(dists, best0);
  _mm512_storeu_pd(dists + 8, best1);
  _mm512_storeu_si512(idxs, idx0);
  _mm512_storeu_si512(idxs + 8, idx1);
  double best_dist = 0.0;
  const std::size_t best = reduce_lanes(dists, idxs, 16, &best_dist);
  return nearest_tail(data, n, dim, query, i, best, best_dist, best_dist_sq);
}

__attribute__((target("avx2"))) std::size_t nearest_avx2(const double* data, std::size_t n,
                                                         std::size_t dim, const double* query,
                                                         double* best_dist_sq) {
  const __m256d inf = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  __m256d best0 = inf, best1 = inf;
  // Row indices ride in double lanes (exact through 2^53 — far beyond any
  // PointSet) so the compare mask can blend them with the same instruction
  // as the distances.
  __m256d idx0 = _mm256_setr_pd(0.0, 1.0, 2.0, 3.0);
  __m256d idx1 = _mm256_setr_pd(4.0, 5.0, 6.0, 7.0);
  __m256d rows0 = idx0, rows1 = idx1;
  const __m256d step = _mm256_set1_pd(8.0);
  const auto d1 = static_cast<long long>(dim);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const char* ahead = reinterpret_cast<const char*>(data + (i + kPrefetchRowsAhead) * dim);
    _mm_prefetch(ahead, _MM_HINT_T0);
    _mm_prefetch(ahead + 64, _MM_HINT_T0);
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    const long long base = static_cast<long long>(i * dim);
    const __m256i off0 = _mm256_set_epi64x(base + 3 * d1, base + 2 * d1, base + d1, base);
    const __m256i off1 = _mm256_add_epi64(off0, _mm256_set1_epi64x(4 * d1));
    for (std::size_t d = 0; d < dim; ++d) {
      const __m256i dd = _mm256_set1_epi64x(static_cast<long long>(d));
      const __m256d c0 = _mm256_i64gather_pd(data, _mm256_add_epi64(off0, dd), 8);
      const __m256d c1 = _mm256_i64gather_pd(data, _mm256_add_epi64(off1, dd), 8);
      const __m256d qd = _mm256_set1_pd(query[d]);
      const __m256d f0 = _mm256_sub_pd(c0, qd);
      const __m256d f1 = _mm256_sub_pd(c1, qd);
      acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(f0, f0));
      acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(f1, f1));
    }
    const __m256d lt0 = _mm256_cmp_pd(acc0, best0, _CMP_LT_OQ);
    best0 = _mm256_blendv_pd(best0, acc0, lt0);
    idx0 = _mm256_blendv_pd(idx0, rows0, lt0);
    const __m256d lt1 = _mm256_cmp_pd(acc1, best1, _CMP_LT_OQ);
    best1 = _mm256_blendv_pd(best1, acc1, lt1);
    idx1 = _mm256_blendv_pd(idx1, rows1, lt1);
    rows0 = _mm256_add_pd(rows0, step);
    rows1 = _mm256_add_pd(rows1, step);
  }
  double dists[8], idx_lanes[8];
  _mm256_storeu_pd(dists, best0);
  _mm256_storeu_pd(dists + 4, best1);
  _mm256_storeu_pd(idx_lanes, idx0);
  _mm256_storeu_pd(idx_lanes + 4, idx1);
  long long idxs[8];
  for (int l = 0; l < 8; ++l) idxs[l] = static_cast<long long>(idx_lanes[l]);
  double best_dist = 0.0;
  const std::size_t best = reduce_lanes(dists, idxs, 8, &best_dist);
  return nearest_tail(data, n, dim, query, i, best, best_dist, best_dist_sq);
}

__attribute__((target("avx512f"))) void distances_avx512(const double* data, std::size_t n,
                                                         std::size_t dim, const double* query,
                                                         double* out) {
  const auto d1 = static_cast<long long>(dim);
  const __m512i lane_off =
      _mm512_setr_epi64(0, d1, 2 * d1, 3 * d1, 4 * d1, 5 * d1, 6 * d1, 7 * d1);
  // Full-mask gathers: the unmasked intrinsic leaves its source operand
  // formally undefined (GCC warns under -Werror); the masked form with an
  // all-ones mask emits the identical vgatherqpd.
  const __m512d zero = _mm512_setzero_pd();
  const __mmask8 kFull = static_cast<__mmask8>(0xff);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const char* ahead = reinterpret_cast<const char*>(data + (i + kPrefetchRowsAhead) * dim);
    _mm_prefetch(ahead, _MM_HINT_T0);
    _mm_prefetch(ahead + 64, _MM_HINT_T0);
    _mm_prefetch(ahead + 128, _MM_HINT_T0);
    __m512d acc0 = _mm512_setzero_pd();
    __m512d acc1 = _mm512_setzero_pd();
    const __m512i off0 =
        _mm512_add_epi64(_mm512_set1_epi64(static_cast<long long>(i * dim)), lane_off);
    const __m512i off1 = _mm512_add_epi64(off0, _mm512_set1_epi64(8 * d1));
    for (std::size_t d = 0; d < dim; ++d) {
      const __m512i dd = _mm512_set1_epi64(static_cast<long long>(d));
      const __m512d c0 = _mm512_mask_i64gather_pd(zero, kFull, _mm512_add_epi64(off0, dd), data, 8);
      const __m512d c1 = _mm512_mask_i64gather_pd(zero, kFull, _mm512_add_epi64(off1, dd), data, 8);
      const __m512d qd = _mm512_set1_pd(query[d]);
      const __m512d f0 = _mm512_sub_pd(c0, qd);
      const __m512d f1 = _mm512_sub_pd(c1, qd);
      acc0 = _mm512_add_pd(acc0, _mm512_mul_pd(f0, f0));
      acc1 = _mm512_add_pd(acc1, _mm512_mul_pd(f1, f1));
    }
    _mm512_storeu_pd(out + i, _mm512_mask_sqrt_pd(zero, kFull, acc0));
    _mm512_storeu_pd(out + i + 8, _mm512_mask_sqrt_pd(zero, kFull, acc1));
  }
  distance_tail(data, n, dim, query, out, i);
}

__attribute__((target("avx2"))) void distances_avx2(const double* data, std::size_t n,
                                                    std::size_t dim, const double* query,
                                                    double* out) {
  const auto d1 = static_cast<long long>(dim);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const char* ahead = reinterpret_cast<const char*>(data + (i + kPrefetchRowsAhead) * dim);
    _mm_prefetch(ahead, _MM_HINT_T0);
    _mm_prefetch(ahead + 64, _MM_HINT_T0);
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    const long long base = static_cast<long long>(i * dim);
    const __m256i off0 = _mm256_set_epi64x(base + 3 * d1, base + 2 * d1, base + d1, base);
    const __m256i off1 = _mm256_add_epi64(off0, _mm256_set1_epi64x(4 * d1));
    for (std::size_t d = 0; d < dim; ++d) {
      const __m256i dd = _mm256_set1_epi64x(static_cast<long long>(d));
      const __m256d c0 = _mm256_i64gather_pd(data, _mm256_add_epi64(off0, dd), 8);
      const __m256d c1 = _mm256_i64gather_pd(data, _mm256_add_epi64(off1, dd), 8);
      const __m256d qd = _mm256_set1_pd(query[d]);
      const __m256d f0 = _mm256_sub_pd(c0, qd);
      const __m256d f1 = _mm256_sub_pd(c1, qd);
      acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(f0, f0));
      acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(f1, f1));
    }
    _mm256_storeu_pd(out + i, _mm256_sqrt_pd(acc0));
    _mm256_storeu_pd(out + i + 4, _mm256_sqrt_pd(acc1));
  }
  distance_tail(data, n, dim, query, out, i);
}

// --- Batched query-side backends (lane-per-query, see point_set_simd.h) ---
//
// Query coordinates are transposed once per 4-point block into one register
// per dimension and reused across the whole centroid panel; centroid
// coordinates are scalar broadcasts (the panel is L1-resident and shared by
// every lane). The transpose works from four row *pointers* — contiguous
// rows and index-resolved rows cost the same — with plain loads and
// shuffles: gathers measured several times slower here (virtualized server
// parts run vgatherqpd microcoded), and the unpack/permute form needs no
// 64-bit vector multiply (absent from the avx2 target set) for the offsets.

/// Transposes rows r0..r3 into coords[d] = {r0[d], r1[d], r2[d], r3[d]} for
/// d in [0, dim). Full 4-column sub-blocks use the unpack/permute2f128
/// double transpose (8 shuffles per 4 dims); leftover dimensions are built
/// with scalar inserts. Reads stay strictly inside each row: the 4-wide
/// loads only issue where d + 4 <= dim.
__attribute__((target("avx2"))) inline void transpose4_rows(const double* r0, const double* r1,
                                                            const double* r2, const double* r3,
                                                            std::size_t dim,
                                                            __m256d* coords) {
  std::size_t d = 0;
  for (; d + 4 <= dim; d += 4) {
    const __m256d a = _mm256_loadu_pd(r0 + d);
    const __m256d b = _mm256_loadu_pd(r1 + d);
    const __m256d c = _mm256_loadu_pd(r2 + d);
    const __m256d e = _mm256_loadu_pd(r3 + d);
    const __m256d t0 = _mm256_unpacklo_pd(a, b);
    const __m256d t1 = _mm256_unpackhi_pd(a, b);
    const __m256d t2 = _mm256_unpacklo_pd(c, e);
    const __m256d t3 = _mm256_unpackhi_pd(c, e);
    coords[d + 0] = _mm256_permute2f128_pd(t0, t2, 0x20);
    coords[d + 1] = _mm256_permute2f128_pd(t1, t3, 0x20);
    coords[d + 2] = _mm256_permute2f128_pd(t0, t2, 0x31);
    coords[d + 3] = _mm256_permute2f128_pd(t1, t3, 0x31);
  }
  for (; d < dim; ++d) coords[d] = _mm256_setr_pd(r0[d], r1[d], r2[d], r3[d]);
}

__attribute__((target("avx2"))) void nearest2_batch_avx2(
    const double* points, std::size_t dim, const std::size_t* indices, std::size_t count,
    const double* centroids, std::size_t k, std::size_t* out_assign, double* out_best_sq,
    double* out_second_sq) {
  const __m256d inf = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  __m256d coords[kMaxBatchDim];
  std::size_t j = 0;
  for (; j + 4 <= count; j += 4) {
    const double* r0 = points + (indices != nullptr ? indices[j + 0] : j + 0) * dim;
    const double* r1 = points + (indices != nullptr ? indices[j + 1] : j + 1) * dim;
    const double* r2 = points + (indices != nullptr ? indices[j + 2] : j + 2) * dim;
    const double* r3 = points + (indices != nullptr ? indices[j + 3] : j + 3) * dim;
    transpose4_rows(r0, r1, r2, r3, dim, coords);
    __m256d best = inf, second = inf;
    // Centroid indices ride in double lanes (exact through 2^53, far beyond
    // any panel) so one blendv serves distances and indices alike.
    __m256d best_idx = _mm256_setzero_pd();
    for (std::size_t c = 0; c < k; ++c) {
      const double* r = centroids + c * dim;
      __m256d acc = _mm256_setzero_pd();
      for (std::size_t d = 0; d < dim; ++d) {
        const __m256d f = _mm256_sub_pd(_mm256_set1_pd(r[d]), coords[d]);
        acc = _mm256_add_pd(acc, _mm256_mul_pd(f, f));
      }
      const __m256d lt_best = _mm256_cmp_pd(acc, best, _CMP_LT_OQ);
      const __m256d lt_second = _mm256_cmp_pd(acc, second, _CMP_LT_OQ);
      second = _mm256_blendv_pd(second, acc, lt_second);
      second = _mm256_blendv_pd(second, best, lt_best);
      best = _mm256_blendv_pd(best, acc, lt_best);
      best_idx = _mm256_blendv_pd(best_idx, _mm256_set1_pd(static_cast<double>(c)), lt_best);
    }
    _mm256_storeu_pd(out_best_sq + j, best);
    _mm256_storeu_pd(out_second_sq + j, second);
    double idxs[4];
    _mm256_storeu_pd(idxs, best_idx);
    for (int l = 0; l < 4; ++l) out_assign[j + l] = static_cast<std::size_t>(idxs[l]);
  }
  nearest2_batch_tail(points, dim, indices, count, centroids, k, out_assign, out_best_sq,
                      out_second_sq, j);
}

__attribute__((target("avx2"))) void assigned_distance_avx2(
    const double* points, std::size_t dim, const std::size_t* indices, std::size_t count,
    const double* centroids, const std::size_t* assign, double* out_dist_sq) {
  __m256d pcoords[kMaxBatchDim];
  __m256d ccoords[kMaxBatchDim];
  std::size_t j = 0;
  for (; j + 4 <= count; j += 4) {
    const double* p0 = points + (indices != nullptr ? indices[j + 0] : j + 0) * dim;
    const double* p1 = points + (indices != nullptr ? indices[j + 1] : j + 1) * dim;
    const double* p2 = points + (indices != nullptr ? indices[j + 2] : j + 2) * dim;
    const double* p3 = points + (indices != nullptr ? indices[j + 3] : j + 3) * dim;
    transpose4_rows(p0, p1, p2, p3, dim, pcoords);
    transpose4_rows(centroids + assign[j + 0] * dim, centroids + assign[j + 1] * dim,
                    centroids + assign[j + 2] * dim, centroids + assign[j + 3] * dim, dim,
                    ccoords);
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t d = 0; d < dim; ++d) {
      const __m256d f = _mm256_sub_pd(ccoords[d], pcoords[d]);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(f, f));
    }
    _mm256_storeu_pd(out_dist_sq + j, acc);
  }
  assigned_distance_tail(points, dim, indices, count, centroids, assign, out_dist_sq, j);
}

__attribute__((target("avx2"))) std::size_t hamerly_skip_avx2(
    std::size_t count, const std::size_t* assign, const double* best_dist_sq, double* lower,
    const double* s_half, double delta_max, double delta_second, std::size_t moved_most,
    double guard_scale, double guard_shift, std::size_t base_index, std::size_t* survivors) {
  const __m256d scale = _mm256_set1_pd(guard_scale);
  const __m256d shift = _mm256_set1_pd(guard_shift);
  const __m256d v_dmax = _mm256_set1_pd(delta_max);
  const __m256d v_dsec = _mm256_set1_pd(delta_second);
  const __m256d two = _mm256_set1_pd(2.0);
  const __m256d zero = _mm256_setzero_pd();
  const __m256i v_moved = _mm256_set1_epi64x(static_cast<long long>(moved_most));
  std::size_t pending = 0;
  std::size_t j = 0;
  for (; j + 4 <= count; j += 4) {
    const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(assign + j));
    // moved = assign == moved_most ? delta_second : delta_max, as a blend on
    // the 64-bit equality mask (indices fit 64 bits by construction).
    const __m256d is_moved = _mm256_castsi256_pd(_mm256_cmpeq_epi64(a, v_moved));
    const __m256d moved = _mm256_blendv_pd(v_dmax, v_dsec, is_moved);
    const __m256d low = _mm256_loadu_pd(lower + j);
    const __m256d lb =
        _mm256_sub_pd(_mm256_mul_pd(_mm256_sub_pd(low, moved), scale), shift);
    // s_half is a tiny k-sized table: scalar loads + setr beat a gather on
    // the virtualized parts this targets (see the transpose note above).
    const __m256d s = _mm256_setr_pd(s_half[assign[j + 0]], s_half[assign[j + 1]],
                                     s_half[assign[j + 2]], s_half[assign[j + 3]]);
    const __m256d lb_ge_s = _mm256_cmp_pd(lb, s, _CMP_GE_OQ);
    const __m256d z = _mm256_blendv_pd(s, lb, lb_ge_s);
    const __m256d best = _mm256_loadu_pd(best_dist_sq + j);
    const __m256d zz = _mm256_sub_pd(_mm256_mul_pd(_mm256_mul_pd(z, z), scale), shift);
    const __m256d skip = _mm256_and_pd(_mm256_cmp_pd(z, zero, _CMP_GT_OQ),
                                       _mm256_cmp_pd(best, zz, _CMP_LT_OQ));
    // New lower bound for skipped lanes, arithmetic exactly as the tail:
    // lb when lb >= s, else max(lb, guard(2s - sqrt(best))) — the max spelled
    // as a blend on lb < elkan so equal values pick the same operand.
    const __m256d elkan = _mm256_sub_pd(
        _mm256_mul_pd(_mm256_sub_pd(_mm256_mul_pd(two, s), _mm256_sqrt_pd(best)), scale),
        shift);
    const __m256d alt = _mm256_blendv_pd(lb, elkan, _mm256_cmp_pd(lb, elkan, _CMP_LT_OQ));
    const __m256d skipped_low = _mm256_blendv_pd(alt, lb, lb_ge_s);
    _mm256_storeu_pd(lower + j, _mm256_blendv_pd(low, skipped_low, skip));
    const int mask = _mm256_movemask_pd(skip);
    if (mask != 0xF) {
      for (int l = 0; l < 4; ++l) {
        if ((mask & (1 << l)) == 0) survivors[pending++] = base_index + j + l;
      }
    }
  }
  return hamerly_skip_tail(count, assign, best_dist_sq, lower, s_half, delta_max,
                           delta_second, moved_most, guard_scale, guard_shift, base_index,
                           survivors, j, pending);
}

__attribute__((target("avx2"))) void weighted_scatter_add_avx2(
    const double* points, std::size_t dim, const std::size_t* indices, std::size_t count,
    const double* weights, const std::size_t* assign, double* sums, double* cluster_weight) {
  // Lanes run across dimensions of one point at a time — never across
  // points — so each (c, d) accumulator still sees the scalar addition
  // order. The leftover dimensions finish on the scalar chain per point.
  for (std::size_t j = 0; j < count; ++j) {
    const std::size_t i = indices != nullptr ? indices[j] : j;
    const std::size_t c = assign != nullptr ? assign[i] : 0;
    const double w = weights[i];
    const double* p = points + i * dim;
    double* sum = sums + c * dim;
    const __m256d w4 = _mm256_set1_pd(w);
    std::size_t d = 0;
    for (; d + 4 <= dim; d += 4) {
      const __m256d acc = _mm256_loadu_pd(sum + d);
      const __m256d x = _mm256_mul_pd(_mm256_loadu_pd(p + d), w4);
      _mm256_storeu_pd(sum + d, _mm256_add_pd(acc, x));
    }
    for (; d < dim; ++d) sum[d] += p[d] * w;
    cluster_weight[c] += w;
  }
}

Level probe_detected_level() {
  if (__builtin_cpu_supports("avx512f")) return Level::kAvx512;
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
  return Level::kScalar;
}

#else  // !defined(__x86_64__)

Level probe_detected_level() { return Level::kScalar; }

#endif

Level parse_level_override(Level detected) {
  const char* env = std::getenv("GEORED_SIMD");
  if (env == nullptr || *env == '\0') return detected;
  Level requested = detected;
  if (std::strcmp(env, "scalar") == 0) {
    requested = Level::kScalar;
  } else if (std::strcmp(env, "avx2") == 0) {
    requested = Level::kAvx2;
  } else if (std::strcmp(env, "avx512") == 0) {
    requested = Level::kAvx512;
  }
  // Unknown values keep the detected level; a request above it clamps down
  // (the hardware decides what can run, the variable can only forbid).
  return requested < detected ? requested : detected;
}

}  // namespace

Level detected_level() {
  static const Level level = probe_detected_level();
  return level;
}

Level active_level() {
  static const Level level = parse_level_override(detected_level());
  return level;
}

const char* level_name(Level level) {
  switch (level) {
    case Level::kAvx512:
      return "avx512";
    case Level::kAvx2:
      return "avx2";
    case Level::kScalar:
      break;
  }
  return "scalar";
}

std::size_t nearest_row(const double* data, std::size_t n, std::size_t dim,
                        const double* query, double* best_dist_sq, Level level) {
  GEORED_ENSURE(n >= 1 && best_dist_sq != nullptr,
                "nearest_row requires at least one row and a result slot");
#if defined(__x86_64__)
  if (level == Level::kAvx512 && detected_level() >= Level::kAvx512) {
    return nearest_avx512(data, n, dim, query, best_dist_sq);
  }
  if (level == Level::kAvx2 && detected_level() >= Level::kAvx2) {
    return nearest_avx2(data, n, dim, query, best_dist_sq);
  }
#else
  (void)level;
#endif
  return nearest_tail(data, n, dim, query, 0, 0, std::numeric_limits<double>::infinity(),
                      best_dist_sq);
}

void distance_row(const double* data, std::size_t n, std::size_t dim, const double* query,
                  double* out, Level level) {
  GEORED_ENSURE(n == 0 || out != nullptr, "distance_row needs an output buffer for its rows");
#if defined(__x86_64__)
  if (level == Level::kAvx512 && detected_level() >= Level::kAvx512) {
    distances_avx512(data, n, dim, query, out);
    return;
  }
  if (level == Level::kAvx2 && detected_level() >= Level::kAvx2) {
    distances_avx2(data, n, dim, query, out);
    return;
  }
#else
  (void)level;
#endif
  distance_tail(data, n, dim, query, out, 0);
}

void nearest2_batch(const double* points, std::size_t dim, const std::size_t* indices,
                    std::size_t count, const double* centroids, std::size_t k,
                    std::size_t* out_assign, double* out_best_sq, double* out_second_sq,
                    Level level) {
  GEORED_ENSURE(k >= 1, "nearest2_batch requires at least one centroid");
  GEORED_ENSURE(count == 0 || (out_assign != nullptr && out_best_sq != nullptr &&
                               out_second_sq != nullptr),
                "nearest2_batch needs all three output buffers");
#if defined(__x86_64__)
  // Both vector levels run the 256-bit kernel: the batch kernels are
  // compute-dense over a tiny L1-resident panel (unlike the memory-streaming
  // row kernels above), and a sustained 512-bit multiply/add stream trips
  // AVX-512 frequency licensing on the server parts this targets — measured
  // at parity with the scalar tail, while the ymm form runs ~1.4x faster
  // than scalar at full clocks. avx512f implies avx2, so the dispatch is
  // always safe.
  if (count >= kMinBatchQueries && dim <= kMaxBatchDim && level >= Level::kAvx2 &&
      detected_level() >= Level::kAvx2) {
    nearest2_batch_avx2(points, dim, indices, count, centroids, k, out_assign, out_best_sq,
                        out_second_sq);
    return;
  }
#else
  (void)level;
#endif
  nearest2_batch_tail(points, dim, indices, count, centroids, k, out_assign, out_best_sq,
                      out_second_sq, 0);
}

void assigned_distance_batch(const double* points, std::size_t dim,
                             const std::size_t* indices, std::size_t count,
                             const double* centroids, const std::size_t* assign,
                             double* out_dist_sq, Level level) {
  GEORED_ENSURE(count == 0 || (assign != nullptr && out_dist_sq != nullptr),
                "assigned_distance_batch needs assignments and an output buffer");
#if defined(__x86_64__)
  // 256-bit at both vector levels, as in nearest2_batch above.
  if (count >= kMinBatchQueries && dim <= kMaxBatchDim && level >= Level::kAvx2 &&
      detected_level() >= Level::kAvx2) {
    assigned_distance_avx2(points, dim, indices, count, centroids, assign, out_dist_sq);
    return;
  }
#else
  (void)level;
#endif
  assigned_distance_tail(points, dim, indices, count, centroids, assign, out_dist_sq, 0);
}

std::size_t hamerly_skip_batch(std::size_t count, const std::size_t* assign,
                               const double* best_dist_sq, double* lower,
                               const double* s_half, double delta_max, double delta_second,
                               std::size_t moved_most, double guard_scale,
                               double guard_shift, std::size_t base_index,
                               std::size_t* survivors, Level level) {
  GEORED_ENSURE(count == 0 || (assign != nullptr && best_dist_sq != nullptr &&
                               lower != nullptr && s_half != nullptr && survivors != nullptr),
                "hamerly_skip_batch needs bounds, assignments, and a survivor buffer");
#if defined(__x86_64__)
  // 256-bit at both vector levels, as in nearest2_batch above. No dim gate:
  // the kernel is dimension-free (one lane per query throughout).
  if (count >= kMinBatchQueries && level >= Level::kAvx2 &&
      detected_level() >= Level::kAvx2) {
    return hamerly_skip_avx2(count, assign, best_dist_sq, lower, s_half, delta_max,
                             delta_second, moved_most, guard_scale, guard_shift, base_index,
                             survivors);
  }
#else
  (void)level;
#endif
  return hamerly_skip_tail(count, assign, best_dist_sq, lower, s_half, delta_max,
                           delta_second, moved_most, guard_scale, guard_shift, base_index,
                           survivors, 0, 0);
}

void weighted_scatter_add(const double* points, std::size_t dim, const std::size_t* indices,
                          std::size_t count, const double* weights,
                          const std::size_t* assign, double* sums, double* cluster_weight,
                          Level level) {
  GEORED_ENSURE(count == 0 || (points != nullptr && weights != nullptr && sums != nullptr &&
                               cluster_weight != nullptr),
                "weighted_scatter_add needs points, weights, and accumulator buffers");
#if defined(__x86_64__)
  // 256-bit at both vector levels, as in nearest2_batch above. Needs at
  // least one full 4-lane dimension block to beat the scalar chain; there is
  // no upper dim gate because the kernel streams dimensions from memory
  // instead of holding them in registers.
  if (count >= kMinBatchQueries && dim >= 4 && level >= Level::kAvx2 &&
      detected_level() >= Level::kAvx2) {
    weighted_scatter_add_avx2(points, dim, indices, count, weights, assign, sums,
                              cluster_weight);
    return;
  }
#else
  (void)level;
#endif
  weighted_scatter_add_tail(points, dim, indices, count, weights, assign, sums,
                            cluster_weight);
}

}  // namespace geored::simd
