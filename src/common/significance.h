// Statistical comparison of experiment outcomes.
//
// The evaluation harness averages 30 runs per point; whether "strategy A
// beats strategy B" is signal or noise deserves a test, not a shrug. The
// experiments pair naturally (same run seed ⇒ same candidate set and
// client population for every strategy), so the paired t-test applies;
// Welch's test covers unpaired samples. P-values use the normal
// approximation to the t distribution — exact enough at n ≈ 30 for the
// accept/reject calls made here.
#pragma once

#include <cstddef>
#include <vector>

namespace geored {

struct TTestResult {
  double t_statistic = 0.0;
  double degrees_of_freedom = 0.0;
  /// Two-sided p-value (normal approximation).
  double p_value = 1.0;
  /// Mean difference (first sample minus second).
  double mean_difference = 0.0;
  bool significant_at_05() const { return p_value < 0.05; }
};

/// Paired t-test: samples must align index-by-index (e.g. per-run delays of
/// two strategies over the same run seeds). Requires >= 2 pairs.
TTestResult paired_t_test(const std::vector<double>& first,
                          const std::vector<double>& second);

/// Welch's unequal-variance t-test for independent samples (>= 2 each).
TTestResult welch_t_test(const std::vector<double>& first,
                         const std::vector<double>& second);

/// Standard normal two-sided tail probability: P(|Z| > |z|).
double normal_two_sided_p(double z);

}  // namespace geored
