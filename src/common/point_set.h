// Structure-of-arrays point storage for the hot distance kernels.
//
// Point (one heap-allocated std::vector<double> per point) is the right
// value type at API boundaries, but walking a std::vector<Point> in a hot
// loop chases one pointer per point and defeats both the prefetcher and the
// auto-vectorizer. PointSet stores n points of a fixed dimension in one
// contiguous n×dim row-major buffer and provides the batched kernels the
// clustering and placement hot paths are written against:
//
//   nearest_of             index of the row closest to a query point
//   distance_row           Euclidean distance from a query to every row
//   pairwise_min_distance  the closest pair of rows
//
// All kernels iterate rows in index order and dimensions in ascending order
// with the exact floating-point operation sequence of the scalar Point
// reference paths (Point::distance_squared_to and linear scans with a
// strict `<`), so results are bit-identical to the Point-based code they
// replace — see tests/common/point_set_test.cpp and docs/performance.md.
#pragma once

#include <cstddef>
#include <limits>
#include <utility>
#include <vector>

#include "common/ensure.h"
#include "common/point.h"
#include "common/point_set_simd.h"

namespace geored {

class PointSet {
 public:
  /// An empty set; the dimension is adopted from the first row pushed.
  PointSet() = default;

  /// An empty set of points in R^dim.
  explicit PointSet(std::size_t dim);

  /// Builds a set from existing points (all of one dimension).
  static PointSet from_points(const std::vector<Point>& points);

  std::size_t size() const { return n_; }
  std::size_t dim() const { return dim_; }
  bool empty() const { return n_ == 0; }

  /// Pre-allocates storage for `n` rows. On a set whose dimension is not
  /// yet known (default construction, nothing pushed) the request is
  /// remembered and applied when the first push_back adopts a dimension.
  void reserve(std::size_t n) {
    if (dim_ == 0) {
      pending_reserve_rows_ = std::max(pending_reserve_rows_, n);
    } else {
      data_.reserve(n * dim_);
    }
  }
  void clear() {
    data_.clear();
    n_ = 0;
  }

  /// Appends a point. An empty set with unspecified dimension (default
  /// construction) adopts the dimension of the first point.
  void push_back(const Point& p);

  /// Appends a row from `dim` contiguous components — the allocation-free
  /// form the batched ingestion paths use. Same dimension-adoption rules as
  /// push_back(Point).
  void push_back_row(const double* values, std::size_t dim);

  /// Appends `rows` contiguous row-major rows at once — one bulk insert
  /// instead of a per-row loop, the form the staging paths use to splice a
  /// whole recorded batch. Equivalent to push_back_row per row in order;
  /// same dimension-adoption rules.
  void append_rows(const double* values, std::size_t rows, std::size_t dim);

  /// Drops every row past the first `n` (n <= size()); capacity is kept so
  /// compaction passes can rewrite in place.
  void truncate(std::size_t n);

  /// Overwrites row `i` with `p` (matching dimension required).
  void assign_row(std::size_t i, const Point& p);

  /// Removes row `i`, shifting later rows down (vector::erase semantics).
  void erase_row(std::size_t i);

  /// Borrowed pointer to row `i`'s `dim()` contiguous components.
  const double* row(std::size_t i) const { return data_.data() + i * dim_; }
  double* mutable_row(std::size_t i) { return data_.data() + i * dim_; }

  /// Copies row `i` back out as a Point.
  Point point(std::size_t i) const;

  /// Squared Euclidean distance between row `i` and the `dim()` components
  /// at `q`; same operation order as Point::distance_squared_to.
  double distance_squared(std::size_t i, const double* q) const {
    const double* r = row(i);
    double total = 0.0;
    for (std::size_t d = 0; d < dim_; ++d) {
      const double diff = r[d] - q[d];
      total += diff * diff;
    }
    return total;
  }

  /// Index of the row nearest to `query` (squared-distance argmin, first
  /// winner on ties — the same scan as the scalar nearest-centroid loops).
  /// Requires a non-empty set. If `best_dist_sq` is non-null it receives
  /// the winning squared distance. Inline: this scan is the shared inner
  /// kernel of every per-access and per-point loop in the codebase.
  std::size_t nearest_of(const double* query, double* best_dist_sq = nullptr) const {
    GEORED_ENSURE(!empty(), "nearest_of on an empty PointSet");
    // Large scans dispatch to the register-blocked SIMD backends; they
    // reproduce this loop bit for bit (see point_set_simd.h). Small scans —
    // the per-access latency paths — stay on the inline loop below.
    if (n_ >= simd::kMinSimdRows && dim_ > 0) {
      const simd::Level level = simd::active_level();
      if (level != simd::Level::kScalar) {
        double dist = 0.0;
        const std::size_t best = simd::nearest_row(data_.data(), n_, dim_, query, &dist, level);
        if (best_dist_sq != nullptr) *best_dist_sq = dist;
        return best;
      }
    }
    std::size_t best = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    const std::size_t n = size();
    for (std::size_t i = 0; i < n; ++i) {
      const double dist = distance_squared(i, query);
      // Branchless select (same strict-`<` first-winner comparison, so the
      // result — including the NaN-keeps-current behavior — is identical):
      // the winning row is effectively random across calls, and a
      // conditional branch here mispredicts its way through the scan while
      // serializing the per-row distance chains behind it.
      const bool better = dist < best_dist;
      best = better ? i : best;
      best_dist = better ? dist : best_dist;
    }
    if (best_dist_sq != nullptr) *best_dist_sq = best_dist;
    return best;
  }
  std::size_t nearest_of(const Point& query, double* best_dist_sq = nullptr) const {
    GEORED_ENSURE(query.dim() == dim_, "query dimension mismatch in nearest_of");
    return nearest_of(query.values().data(), best_dist_sq);
  }

  /// Like nearest_of, additionally reporting the second-best squared
  /// distance (infinity when size() == 1) — the bound the accelerated
  /// k-means maintains. Best-index tracking is the identical strict-`<`
  /// first-winner scan as nearest_of, so the returned index and
  /// `best_dist_sq` match it bit for bit.
  std::size_t nearest2_of(const double* query, double* best_dist_sq,
                          double* second_dist_sq) const {
    GEORED_ENSURE(!empty(), "nearest2_of on an empty PointSet");
    std::size_t best = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    double second_dist = std::numeric_limits<double>::infinity();
    const std::size_t n = size();
    for (std::size_t i = 0; i < n; ++i) {
      const double dist = distance_squared(i, query);
      // Branchless form of: if dist < best, demote best to second and take
      // the row; else if dist < second, it becomes the runner-up. The
      // comparisons are the same strict `<` as the branchy original (NaN
      // distances change nothing), only the selects are unconditional.
      const bool better = dist < best_dist;
      const bool runner_up = dist < second_dist;
      second_dist = better ? best_dist : (runner_up ? dist : second_dist);
      best_dist = better ? dist : best_dist;
      best = better ? i : best;
    }
    if (best_dist_sq != nullptr) *best_dist_sq = best_dist;
    if (second_dist_sq != nullptr) *second_dist_sq = second_dist;
    return best;
  }

  /// Fills out[i] with the Euclidean distance from `query` to row i
  /// (`out` must hold size() doubles).
  void distance_row(const double* query, double* out) const;
  void distance_row(const Point& query, double* out) const;

  /// The closest pair of rows (a < b), scanning pairs in the same
  /// lexicographic order as the scalar double loop. Requires size() >= 2.
  /// If `dist_sq` is non-null it receives the pair's squared distance.
  std::pair<std::size_t, std::size_t> pairwise_min_distance(double* dist_sq = nullptr) const;

 private:
  std::size_t dim_ = 0;
  std::size_t n_ = 0;         // explicit so zero-dimension points still count
  std::size_t pending_reserve_rows_ = 0;  // reserve() before dim_ is adopted
  std::vector<double> data_;  // size() * dim_ row-major components
};

}  // namespace geored
