// Structure-of-arrays point storage for the hot distance kernels.
//
// Point (one heap-allocated std::vector<double> per point) is the right
// value type at API boundaries, but walking a std::vector<Point> in a hot
// loop chases one pointer per point and defeats both the prefetcher and the
// auto-vectorizer. PointSet stores n points of a fixed dimension in one
// contiguous n×dim row-major buffer and provides the batched kernels the
// clustering and placement hot paths are written against:
//
//   nearest_of             index of the row closest to a query point
//   distance_row           Euclidean distance from a query to every row
//   pairwise_min_distance  the closest pair of rows
//
// All kernels iterate rows in index order and dimensions in ascending order
// with the exact floating-point operation sequence of the scalar Point
// reference paths (Point::distance_squared_to and linear scans with a
// strict `<`), so results are bit-identical to the Point-based code they
// replace — see tests/common/point_set_test.cpp and docs/performance.md.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/point.h"

namespace geored {

class PointSet {
 public:
  /// An empty set; the dimension is adopted from the first row pushed.
  PointSet() = default;

  /// An empty set of points in R^dim.
  explicit PointSet(std::size_t dim);

  /// Builds a set from existing points (all of one dimension).
  static PointSet from_points(const std::vector<Point>& points);

  std::size_t size() const { return n_; }
  std::size_t dim() const { return dim_; }
  bool empty() const { return n_ == 0; }

  /// Pre-allocates storage for `n` rows. On a set whose dimension is not
  /// yet known (default construction, nothing pushed) the request is
  /// remembered and applied when the first push_back adopts a dimension.
  void reserve(std::size_t n) {
    if (dim_ == 0) {
      pending_reserve_rows_ = std::max(pending_reserve_rows_, n);
    } else {
      data_.reserve(n * dim_);
    }
  }
  void clear() {
    data_.clear();
    n_ = 0;
  }

  /// Appends a point. An empty set with unspecified dimension (default
  /// construction) adopts the dimension of the first point.
  void push_back(const Point& p);

  /// Overwrites row `i` with `p` (matching dimension required).
  void assign_row(std::size_t i, const Point& p);

  /// Removes row `i`, shifting later rows down (vector::erase semantics).
  void erase_row(std::size_t i);

  /// Borrowed pointer to row `i`'s `dim()` contiguous components.
  const double* row(std::size_t i) const { return data_.data() + i * dim_; }
  double* mutable_row(std::size_t i) { return data_.data() + i * dim_; }

  /// Copies row `i` back out as a Point.
  Point point(std::size_t i) const;

  /// Squared Euclidean distance between row `i` and the `dim()` components
  /// at `q`; same operation order as Point::distance_squared_to.
  double distance_squared(std::size_t i, const double* q) const {
    const double* r = row(i);
    double total = 0.0;
    for (std::size_t d = 0; d < dim_; ++d) {
      const double diff = r[d] - q[d];
      total += diff * diff;
    }
    return total;
  }

  /// Index of the row nearest to `query` (squared-distance argmin, first
  /// winner on ties — the same scan as the scalar nearest-centroid loops).
  /// Requires a non-empty set. If `best_dist_sq` is non-null it receives
  /// the winning squared distance.
  std::size_t nearest_of(const double* query, double* best_dist_sq = nullptr) const;
  std::size_t nearest_of(const Point& query, double* best_dist_sq = nullptr) const;

  /// Fills out[i] with the Euclidean distance from `query` to row i
  /// (`out` must hold size() doubles).
  void distance_row(const double* query, double* out) const;
  void distance_row(const Point& query, double* out) const;

  /// The closest pair of rows (a < b), scanning pairs in the same
  /// lexicographic order as the scalar double loop. Requires size() >= 2.
  /// If `dist_sq` is non-null it receives the pair's squared distance.
  std::pair<std::size_t, std::size_t> pairwise_min_distance(double* dist_sq = nullptr) const;

 private:
  std::size_t dim_ = 0;
  std::size_t n_ = 0;         // explicit so zero-dimension points still count
  std::size_t pending_reserve_rows_ = 0;  // reserve() before dim_ is adopted
  std::vector<double> data_;  // size() * dim_ row-major components
};

}  // namespace geored
