// Runtime-dispatched SIMD backends for the PointSet distance kernels.
//
// The kernels here are the large-n code paths behind PointSet::nearest_of,
// PointSet::distance_row, and PointSet::pairwise_min_distance. Each backend
// processes rows in fixed register blocks (16 rows per iteration on
// AVX-512, 8 on AVX2) with one lane per row: every lane accumulates the
// per-dimension `diff = c[d] - q[d]; total += diff * diff` sequence in
// ascending d, so per-row squared distances are bit-identical to
// PointSet::distance_squared. The argmin is kept vertically in registers
// (mask-blend on a strict `<` compare, so a NaN distance never wins — the
// same NaN-keeps-current behavior as the scalar scan) and reduced at the
// end by taking the minimum lane distance and then the minimum row index
// among the lanes achieving it, which is exactly the scalar strict-`<`
// first-winner. Remainder rows continue the scan on the scalar path from
// the reduced state, preserving index order.
//
// Row blocks are loaded with per-dimension gathers rather than a
// transpose-into-tile staging pass: on the benchmark hardware the scalar
// tile transpose costs more than it saves (the panel is streamed once per
// query, so there is no reuse to block for), while the gathered form with
// look-ahead prefetch measures ~2.3x over the scalar scan at 100k rows
// (see docs/performance.md). The centroid-panel case (k-means, summarizer
// budgets) stays on the small-n scalar/in-register paths, where the panel
// is L1-resident by construction.
//
// FP contraction: this header's implementations live in point_set_simd.cpp,
// which is compiled with -ffp-contract=off (see src/common/CMakeLists.txt).
// Unlike target("avx2"), target("avx512f") brings FMA instructions with it,
// so the usual "no FMA in the target set" argument does not apply — the
// compile flag is what keeps `mul` and `add` from being contracted into a
// differently-rounded fused op.
#pragma once

#include <cstddef>
#include <utility>

namespace geored::simd {

/// Instruction-set tiers for the PointSet kernels, in strictly increasing
/// capability order. Dispatch never selects a level the CPU lacks.
enum class Level { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Highest level the running CPU supports (cached cpuid probe).
Level detected_level();

/// The level the PointSet kernels dispatch to: detected_level(), optionally
/// lowered by the GEORED_SIMD environment variable ("scalar", "avx2",
/// "avx512" — values above the detected level are clamped down). Read once;
/// cached for the process lifetime.
Level active_level();

/// Stable lowercase name ("scalar" / "avx2" / "avx512") for reports.
const char* level_name(Level level);

/// Below this many rows a scan stays on PointSet's inline scalar loop: the
/// kernel-call and horizontal-reduction overhead would dominate, and the
/// small-n consumers (summarizer budgets, k-means centroid panels) are the
/// latency-critical per-access paths.
inline constexpr std::size_t kMinSimdRows = 32;

/// Strict-`<` first-winner argmin of squared distances from `query` to the
/// n×dim row-major rows at `data`; the winning squared distance is written
/// to *best_dist_sq (never null). Requires n >= 1. Bit-identical to the
/// scalar PointSet::nearest_of scan at every level.
std::size_t nearest_row(const double* data, std::size_t n, std::size_t dim,
                        const double* query, double* best_dist_sq, Level level);

/// Euclidean distance from `query` to every row, written to out[0..n).
/// vsqrtpd is correctly rounded, so results are bit-identical to
/// std::sqrt(distance_squared) at every level.
void distance_row(const double* data, std::size_t n, std::size_t dim, const double* query,
                  double* out, Level level);

/// Widest point dimensionality the batched query-side kernels below keep in
/// registers (one __m512d/__m256d per dimension, loaded once per block and
/// reused across the whole centroid panel). Wider inputs fall back to the
/// scalar path inside the kernels, which stays bit-identical.
inline constexpr std::size_t kMaxBatchDim = 16;
/// Below this many queries a batched call stays scalar: a block's gather
/// setup needs a few lanes' worth of work to pay for itself.
inline constexpr std::size_t kMinBatchQueries = 16;

/// Batched nearest-two scan: the transpose of nearest_row. Where nearest_row
/// runs one query against many rows (lane-per-row), this runs many query
/// points against one small k×dim `centroids` panel, one *query* per lane —
/// the k-means assignment shape, where k sits far below kMinSimdRows and
/// row-blocked kernels have nothing to vectorize over.
///
/// For each j in [0, count), the query is row `indices[j]` of `points`
/// (identity when indices is null, i.e. row j). Writes the strict-`<`
/// first-winner centroid index to out_assign[j] and the best / second-best
/// squared distances to out_best_sq[j] / out_second_sq[j] (infinity when
/// k == 1). Per-lane arithmetic follows the exact per-dimension
/// subtract/multiply/add sequence of PointSet::nearest2_of in ascending
/// centroid order, so every output is bit-identical to the scalar scan at
/// every level. Requires k >= 1.
void nearest2_batch(const double* points, std::size_t dim, const std::size_t* indices,
                    std::size_t count, const double* centroids, std::size_t k,
                    std::size_t* out_assign, double* out_best_sq, double* out_second_sq,
                    Level level);

/// Batched assigned-centroid distances: out_dist_sq[j] is the squared
/// distance from query j (row indices[j] of `points`, identity when null)
/// to centroid row assign[j] — the Hamerly/Elkan skip-test distance,
/// computed for a whole chunk at once. Same operation order as
/// PointSet::distance_squared, so bit-identical at every level.
void assigned_distance_batch(const double* points, std::size_t dim,
                             const std::size_t* indices, std::size_t count,
                             const double* centroids, const std::size_t* assign,
                             double* out_dist_sq, Level level);

/// Batched Hamerly/Elkan skip tests — the Phase-2 predicate loop of the
/// bounded k-means objective pass, one query per lane. With
/// guard(x) = x * guard_scale - guard_shift (the caller's conservative
/// downward FP shave), each j in [0, count) evaluates
///   moved = assign[j] == moved_most ? delta_second : delta_max
///   lb    = guard(lower[j] - moved)      (decayed Hamerly bound)
///   s     = s_half[assign[j]]            (Elkan half-separation)
///   z     = lb >= s ? lb : s
/// A lane with z > 0 and best_dist_sq[j] < guard(z*z) is *skipped*:
/// lower[j] becomes lb when lb >= s, else
/// max(lb, guard(2*s - sqrt(best_dist_sq[j]))). Every other lane appends
/// base_index + j to `survivors` (ascending). Returns the survivor count.
/// The vector form replays the scalar arithmetic op for op (vsqrtpd is
/// correctly rounded, selects are blends on the same compares), so skip
/// decisions, updated bounds, and survivor order are bit-identical at every
/// level.
std::size_t hamerly_skip_batch(std::size_t count, const std::size_t* assign,
                               const double* best_dist_sq, double* lower,
                               const double* s_half, double delta_max, double delta_second,
                               std::size_t moved_most, double guard_scale,
                               double guard_shift, std::size_t base_index,
                               std::size_t* survivors, Level level);

/// Weighted scatter-accumulation, dimension-lane vectorized: for each j in
/// ascending order, with i = indices ? indices[j] : j and
/// c = assign ? assign[i] : 0,
///   sums[c*dim + d] += points[i*dim + d] * weights[i]   for d in [0, dim)
///   cluster_weight[c] += weights[i]
/// Lanes vectorize across d, never across j, so every (c, d) accumulator
/// sees the same additions in the same order as the scalar loop — sums and
/// cluster_weight are bit-identical at every level. This is the k-means
/// update-step accumulation in both shapes: the sequential full-pass form
/// (assign = the assignment array) and the per-cluster-segment form of the
/// deterministic parallel update (assign == nullptr with sums /
/// cluster_weight pointing at a single cluster's slots).
void weighted_scatter_add(const double* points, std::size_t dim, const std::size_t* indices,
                          std::size_t count, const double* weights,
                          const std::size_t* assign, double* sums, double* cluster_weight,
                          Level level);

}  // namespace geored::simd
