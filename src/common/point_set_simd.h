// Runtime-dispatched SIMD backends for the PointSet distance kernels.
//
// The kernels here are the large-n code paths behind PointSet::nearest_of,
// PointSet::distance_row, and PointSet::pairwise_min_distance. Each backend
// processes rows in fixed register blocks (16 rows per iteration on
// AVX-512, 8 on AVX2) with one lane per row: every lane accumulates the
// per-dimension `diff = c[d] - q[d]; total += diff * diff` sequence in
// ascending d, so per-row squared distances are bit-identical to
// PointSet::distance_squared. The argmin is kept vertically in registers
// (mask-blend on a strict `<` compare, so a NaN distance never wins — the
// same NaN-keeps-current behavior as the scalar scan) and reduced at the
// end by taking the minimum lane distance and then the minimum row index
// among the lanes achieving it, which is exactly the scalar strict-`<`
// first-winner. Remainder rows continue the scan on the scalar path from
// the reduced state, preserving index order.
//
// Row blocks are loaded with per-dimension gathers rather than a
// transpose-into-tile staging pass: on the benchmark hardware the scalar
// tile transpose costs more than it saves (the panel is streamed once per
// query, so there is no reuse to block for), while the gathered form with
// look-ahead prefetch measures ~2.3x over the scalar scan at 100k rows
// (see docs/performance.md). The centroid-panel case (k-means, summarizer
// budgets) stays on the small-n scalar/in-register paths, where the panel
// is L1-resident by construction.
//
// FP contraction: this header's implementations live in point_set_simd.cpp,
// which is compiled with -ffp-contract=off (see src/common/CMakeLists.txt).
// Unlike target("avx2"), target("avx512f") brings FMA instructions with it,
// so the usual "no FMA in the target set" argument does not apply — the
// compile flag is what keeps `mul` and `add` from being contracted into a
// differently-rounded fused op.
#pragma once

#include <cstddef>
#include <utility>

namespace geored::simd {

/// Instruction-set tiers for the PointSet kernels, in strictly increasing
/// capability order. Dispatch never selects a level the CPU lacks.
enum class Level { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Highest level the running CPU supports (cached cpuid probe).
Level detected_level();

/// The level the PointSet kernels dispatch to: detected_level(), optionally
/// lowered by the GEORED_SIMD environment variable ("scalar", "avx2",
/// "avx512" — values above the detected level are clamped down). Read once;
/// cached for the process lifetime.
Level active_level();

/// Stable lowercase name ("scalar" / "avx2" / "avx512") for reports.
const char* level_name(Level level);

/// Below this many rows a scan stays on PointSet's inline scalar loop: the
/// kernel-call and horizontal-reduction overhead would dominate, and the
/// small-n consumers (summarizer budgets, k-means centroid panels) are the
/// latency-critical per-access paths.
inline constexpr std::size_t kMinSimdRows = 32;

/// Strict-`<` first-winner argmin of squared distances from `query` to the
/// n×dim row-major rows at `data`; the winning squared distance is written
/// to *best_dist_sq (never null). Requires n >= 1. Bit-identical to the
/// scalar PointSet::nearest_of scan at every level.
std::size_t nearest_row(const double* data, std::size_t n, std::size_t dim,
                        const double* query, double* best_dist_sq, Level level);

/// Euclidean distance from `query` to every row, written to out[0..n).
/// vsqrtpd is correctly rounded, so results are bit-identical to
/// std::sqrt(distance_squared) at every level.
void distance_row(const double* data, std::size_t n, std::size_t dim, const double* query,
                  double* out, Level level);

}  // namespace geored::simd
