// Lightweight precondition / invariant checking for the geored library.
//
// GEORED_ENSURE is used to validate arguments on public API boundaries; it
// throws std::invalid_argument so callers can recover. GEORED_CHECK is used
// for internal invariants; it throws geored::InternalError, signalling a bug
// in this library rather than misuse by the caller.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace geored {

/// Raised when an internal invariant of the library is violated (a bug in
/// geored itself, not caller misuse).
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void throw_ensure_failure(const char* expr, const std::string& msg,
                                              const std::source_location& loc) {
  throw std::invalid_argument(std::string(loc.file_name()) + ":" +
                              std::to_string(loc.line()) + ": requirement (" + expr +
                              ") failed" + (msg.empty() ? "" : ": " + msg));
}

[[noreturn]] inline void throw_check_failure(const char* expr, const std::string& msg,
                                             const std::source_location& loc) {
  throw InternalError(std::string(loc.file_name()) + ":" + std::to_string(loc.line()) +
                      ": internal invariant (" + std::string(expr) + ") violated" +
                      (msg.empty() ? "" : ": " + msg));
}

}  // namespace detail
}  // namespace geored

/// Validate a caller-supplied argument; throws std::invalid_argument on failure.
#define GEORED_ENSURE(expr, msg)                                                       \
  do {                                                                                 \
    if (!(expr)) {                                                                     \
      ::geored::detail::throw_ensure_failure(#expr, (msg),                             \
                                             std::source_location::current());         \
    }                                                                                  \
  } while (false)

/// Validate an internal invariant; throws geored::InternalError on failure.
#define GEORED_CHECK(expr, msg)                                                        \
  do {                                                                                 \
    if (!(expr)) {                                                                     \
      ::geored::detail::throw_check_failure(#expr, (msg),                              \
                                            std::source_location::current());          \
    }                                                                                  \
  } while (false)
