// Lightweight precondition / invariant checking for the geored library.
//
// GEORED_ENSURE is used to validate arguments on public API boundaries; it
// throws std::invalid_argument so callers can recover. GEORED_CHECK is used
// for internal invariants; it throws geored::InternalError, signalling a bug
// in this library rather than misuse by the caller. GEORED_DCHECK is a
// debug-only variant of GEORED_CHECK for checks too expensive (or too hot)
// to keep in release builds: it compiles to nothing unless the build defines
// GEORED_DEBUG_CHECKS (the asan-ubsan and tsan presets turn it on).
//
// See docs/correctness.md for the policy on choosing between the three.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace geored {

/// Raised when an internal invariant of the library is violated (a bug in
/// geored itself, not caller misuse).
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void throw_ensure_failure(const char* expr, const std::string& msg,
                                              const std::source_location& loc) {
  throw std::invalid_argument(std::string(loc.file_name()) + ":" +
                              std::to_string(loc.line()) + ": requirement (" + expr +
                              ") failed" + (msg.empty() ? "" : ": " + msg));
}

[[noreturn]] inline void throw_check_failure(const char* expr, const std::string& msg,
                                             const std::source_location& loc) {
  throw InternalError(std::string(loc.file_name()) + ":" + std::to_string(loc.line()) +
                      ": internal invariant (" + std::string(expr) + ") violated" +
                      (msg.empty() ? "" : ": " + msg));
}

}  // namespace detail
}  // namespace geored

/// Validate a caller-supplied argument; throws std::invalid_argument on failure.
#define GEORED_ENSURE(expr, msg)                                                       \
  do {                                                                                 \
    if (!(expr)) {                                                                     \
      ::geored::detail::throw_ensure_failure(#expr, (msg),                             \
                                             std::source_location::current());         \
    }                                                                                  \
  } while (false)

/// Validate an internal invariant; throws geored::InternalError on failure.
#define GEORED_CHECK(expr, msg)                                                        \
  do {                                                                                 \
    if (!(expr)) {                                                                     \
      ::geored::detail::throw_check_failure(#expr, (msg),                              \
                                            std::source_location::current());          \
    }                                                                                  \
  } while (false)

/// Debug-only internal invariant check. Zero cost in release builds: unless
/// GEORED_DEBUG_CHECKS is defined the condition is never evaluated (it is
/// only type-checked inside a discarded `if constexpr`-style sizeof context,
/// so the expression must still compile). Throws geored::InternalError when
/// enabled and the condition is false.
#if defined(GEORED_DEBUG_CHECKS) && GEORED_DEBUG_CHECKS
#define GEORED_DCHECK(expr, msg) GEORED_CHECK(expr, msg)
#else
#define GEORED_DCHECK(expr, msg)                                                       \
  do {                                                                                 \
    if (false) {                                                                       \
      static_cast<void>(static_cast<bool>(expr));                                      \
      static_cast<void>(msg);                                                          \
    }                                                                                  \
  } while (false)
#endif

/// True when GEORED_DCHECK is active in this build; usable for guarding
/// debug-only bookkeeping that the checks themselves need.
#if defined(GEORED_DEBUG_CHECKS) && GEORED_DEBUG_CHECKS
inline constexpr bool geored_debug_checks_enabled = true;
#else
inline constexpr bool geored_debug_checks_enabled = false;
#endif
