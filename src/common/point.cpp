#include "common/point.h"

#include <cmath>
#include <ostream>

#include "common/ensure.h"
#include "common/random.h"

namespace geored {

Point::Point(std::size_t dim) : values_(dim, 0.0) {}

Point::Point(std::initializer_list<double> values) : values_(values) {}

Point::Point(std::vector<double> values) : values_(std::move(values)) {}

Point& Point::operator+=(const Point& other) {
  GEORED_ENSURE(dim() == other.dim(), "dimension mismatch in Point addition");
  for (std::size_t i = 0; i < values_.size(); ++i) values_[i] += other.values_[i];
  return *this;
}

Point& Point::operator-=(const Point& other) {
  GEORED_ENSURE(dim() == other.dim(), "dimension mismatch in Point subtraction");
  for (std::size_t i = 0; i < values_.size(); ++i) values_[i] -= other.values_[i];
  return *this;
}

Point& Point::operator*=(double scalar) {
  for (double& v : values_) v *= scalar;
  return *this;
}

Point& Point::operator/=(double scalar) {
  GEORED_ENSURE(scalar != 0.0, "division of Point by zero");
  for (double& v : values_) v /= scalar;
  return *this;
}

double Point::norm() const { return std::sqrt(norm_squared()); }

double Point::norm_squared() const {
  double total = 0.0;
  for (double v : values_) total += v * v;
  return total;
}

double Point::distance_to(const Point& other) const {
  return std::sqrt(distance_squared_to(other));
}

double Point::distance_squared_to(const Point& other) const {
  GEORED_ENSURE(dim() == other.dim(), "dimension mismatch in Point distance");
  double total = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    const double d = values_[i] - other.values_[i];
    total += d * d;
  }
  return total;
}

Point Point::unit_vector_from(const Point& other, unsigned tiebreak) const {
  GEORED_ENSURE(dim() == other.dim(), "dimension mismatch in unit_vector_from");
  Point direction = *this - other;
  const double len = direction.norm();
  if (len > 1e-12) return direction /= len;
  // Coincident points: fabricate a deterministic random direction so callers
  // like Vivaldi can push overlapping nodes apart.
  Rng rng(0x5bd1e995u ^ (static_cast<std::uint64_t>(tiebreak) << 17));
  Point random_dir(dim());
  double norm = 0.0;
  while (norm < 1e-12) {
    for (std::size_t i = 0; i < random_dir.dim(); ++i) random_dir[i] = rng.normal();
    norm = random_dir.norm();
  }
  return random_dir /= norm;
}

Point Point::component_squares() const {
  Point result(dim());
  for (std::size_t i = 0; i < values_.size(); ++i) result[i] = values_[i] * values_[i];
  return result;
}

bool Point::is_finite() const {
  for (double v : values_) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

std::ostream& operator<<(std::ostream& os, const Point& p) {
  os << '(';
  for (std::size_t i = 0; i < p.dim(); ++i) {
    if (i > 0) os << ", ";
    os << p[i];
  }
  return os << ')';
}

Point weighted_mean(const std::vector<Point>& points, const std::vector<double>& weights) {
  GEORED_ENSURE(!points.empty(), "weighted_mean requires at least one point");
  GEORED_ENSURE(points.size() == weights.size(),
                "weighted_mean requires one weight per point");
  Point total(points.front().dim());
  double weight_sum = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    GEORED_ENSURE(weights[i] >= 0.0, "weights must be non-negative");
    total += points[i] * weights[i];
    weight_sum += weights[i];
  }
  GEORED_ENSURE(weight_sum > 0.0, "weighted_mean requires a positive total weight");
  return total /= weight_sum;
}

}  // namespace geored
