// A small dense vector in R^d used for network coordinates and clustering.
//
// Dimensions are decided at runtime (network coordinate spaces are typically
// 2-8 dimensional). Point is a value type with the usual vector-space
// operations; all binary operations require matching dimensionality.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

namespace geored {

class Point {
 public:
  /// The zero-dimensional point; useful as a "not yet assigned" sentinel.
  Point() = default;

  /// Zero vector in R^dim.
  explicit Point(std::size_t dim);

  /// Point with explicit component values.
  Point(std::initializer_list<double> values);

  /// Point adopting an existing component vector.
  explicit Point(std::vector<double> values);

  std::size_t dim() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double operator[](std::size_t i) const { return values_[i]; }
  double& operator[](std::size_t i) { return values_[i]; }

  const std::vector<double>& values() const { return values_; }

  Point& operator+=(const Point& other);
  Point& operator-=(const Point& other);
  Point& operator*=(double scalar);
  Point& operator/=(double scalar);

  friend Point operator+(Point lhs, const Point& rhs) { return lhs += rhs; }
  friend Point operator-(Point lhs, const Point& rhs) { return lhs -= rhs; }
  friend Point operator*(Point lhs, double scalar) { return lhs *= scalar; }
  friend Point operator*(double scalar, Point rhs) { return rhs *= scalar; }
  friend Point operator/(Point lhs, double scalar) { return lhs /= scalar; }

  bool operator==(const Point& other) const = default;

  /// Euclidean norm.
  double norm() const;

  /// Squared Euclidean norm (avoids the sqrt when only comparisons matter).
  double norm_squared() const;

  /// Euclidean distance to another point of the same dimension.
  double distance_to(const Point& other) const;

  /// Squared Euclidean distance to another point of the same dimension.
  double distance_squared_to(const Point& other) const;

  /// Unit vector pointing from `other` towards this point. If the two points
  /// coincide, returns a deterministic pseudo-random unit vector derived from
  /// `tiebreak` so that callers (e.g. Vivaldi) can separate coincident nodes.
  Point unit_vector_from(const Point& other, unsigned tiebreak = 0) const;

  /// Component-wise squares (used for micro-cluster second moments).
  Point component_squares() const;

  /// True if every component is finite.
  bool is_finite() const;

 private:
  std::vector<double> values_;
};

std::ostream& operator<<(std::ostream& os, const Point& p);

/// Weighted mean of points; weights must be non-negative with positive sum,
/// and all points must share one dimension.
Point weighted_mean(const std::vector<Point>& points, const std::vector<double>& weights);

}  // namespace geored
