// Derivative-free simplex minimization (Nelder-Mead).
//
// Used by the GNP-style landmark embedding, which minimizes the latency
// prediction error of a coordinate assignment — a low-dimensional, noisy,
// non-smooth objective for which Nelder-Mead is the method GNP itself used.
#pragma once

#include <functional>
#include <vector>

namespace geored {

struct NelderMeadOptions {
  std::size_t max_iterations = 2000;
  /// Converged when the simplex's best-worst objective spread drops below this.
  double tolerance = 1e-7;
  /// Initial simplex is the start point plus per-coordinate offsets of this size.
  double initial_step = 1.0;
};

struct NelderMeadResult {
  std::vector<double> argmin;
  double min_value = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
};

/// Minimizes `objective` starting from `start`. The objective must accept a
/// vector of the same dimension as `start` and return a finite value.
NelderMeadResult nelder_mead(const std::function<double(const std::vector<double>&)>& objective,
                             std::vector<double> start, const NelderMeadOptions& options = {});

}  // namespace geored
