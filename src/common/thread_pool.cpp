#include "common/thread_pool.h"

#include <cstdlib>
#include <memory>
#include <string>

#include "common/ensure.h"

namespace geored {

namespace {

// The swap guard for the process-wide pool: global() materializes the pool
// under it, set_global_thread_count replaces the pool under it. The
// reference global() returns intentionally outlives the critical section —
// that is exactly why set_global_thread_count refuses to swap a busy pool.
Mutex g_global_pool_mutex;
std::unique_ptr<ThreadPool> g_global_pool GEORED_GUARDED_BY(g_global_pool_mutex);

// Set while this thread runs a chunk body, so nested data-parallel calls
// can detect they are already inside parallel work and run inline.
thread_local bool t_in_chunk = false;

// parallel_reduce_sum always splits [0, n) into this many chunks so the
// summation tree is a function of n alone — the thread-count-invariance
// contract. 64 keeps per-chunk work ≥ 32 elements at the min_parallel
// thresholds call sites use (2048) and caps usable reduce parallelism.
constexpr std::size_t kReduceChunks = 64;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_thread_count();
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::run_chunks(std::size_t n, const std::function<void(std::size_t)>& chunk_fn) {
  GEORED_ENSURE(chunk_fn, "run_chunks requires a callable chunk function");
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t c = 0; c < n; ++c) chunk_fn(c);
    return;
  }
  std::exception_ptr error;
  {
    const MutexLock lock(mutex_);
    GEORED_CHECK(task_ == nullptr, "nested or concurrent run_chunks on one ThreadPool");
    task_ = &chunk_fn;
    num_chunks_ = n;
    next_chunk_ = 0;
    completed_ = 0;
    error_ = nullptr;
    task_cv_.notify_all();
    drain();  // the caller participates
    while (completed_ != num_chunks_) done_cv_.wait(mutex_);
    task_ = nullptr;
    num_chunks_ = 0;
    error = error_;
    error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::drain() {
  while (next_chunk_ < num_chunks_) {
    const std::size_t chunk = next_chunk_++;
    const std::function<void(std::size_t)>* task = task_;
    // The chunk body runs outside the critical section; `task` is a pointer
    // copied under the mutex and the pointee is immutable for the task's
    // lifetime (run_chunks keeps the function alive until completion).
    mutex_.unlock();
    std::exception_ptr thrown;
    const bool was_in_chunk = t_in_chunk;
    t_in_chunk = true;
    try {
      (*task)(chunk);
    } catch (...) {
      thrown = std::current_exception();
    }
    t_in_chunk = was_in_chunk;
    mutex_.lock();
    if (thrown && !error_) error_ = thrown;
    ++completed_;
    if (completed_ == num_chunks_) done_cv_.notify_all();
  }
}

void ThreadPool::worker_loop() {
  const MutexLock lock(mutex_);
  for (;;) {
    while (!stop_ && next_chunk_ >= num_chunks_) task_cv_.wait(mutex_);
    if (stop_) return;
    drain();
  }
}

std::size_t ThreadPool::default_thread_count() {
  if (const char* env = std::getenv("GEORED_THREADS")) {
    try {
      const long long parsed = std::stoll(env);
      // Parsed values clamp to [1, 1024]; only unparsable strings fall
      // through to the hardware default.
      if (parsed < 1) return 1;
      return static_cast<std::size_t>(parsed > 1024 ? 1024 : parsed);
    } catch (const std::exception&) {
      // Unparsable values fall through to the hardware default.
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

bool ThreadPool::idle() {
  const MutexLock lock(mutex_);
  return task_ == nullptr;
}

bool ThreadPool::in_parallel_chunk() { return t_in_chunk; }

ThreadPool& ThreadPool::global() {
  const MutexLock lock(g_global_pool_mutex);
  if (!g_global_pool) g_global_pool = std::make_unique<ThreadPool>();
  return *g_global_pool;
}

void ThreadPool::set_global_thread_count(std::size_t threads) {
  const MutexLock lock(g_global_pool_mutex);
  if (g_global_pool) {
    // A long-lived reference handed out by global() would dangle if the old
    // pool were destroyed mid-task; fail loudly instead.
    GEORED_CHECK(g_global_pool->idle(),
                 "set_global_thread_count while parallel work is in flight");
  }
  g_global_pool = std::make_unique<ThreadPool>(threads);
}

void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t min_parallel) {
  GEORED_ENSURE(body, "parallel_for requires a callable body");
  if (n == 0) return;
  // Nested inside a chunk the pool is already busy: run sequentially, which
  // is byte-identical to the single-chunk path.
  if (n < min_parallel || ThreadPool::in_parallel_chunk()) {
    body(0, n);
    return;
  }
  ThreadPool& pool = ThreadPool::global();
  const std::size_t chunks = pool.thread_count();
  if (chunks == 1) {
    body(0, n);
    return;
  }
  pool.run_chunks(chunks, [&](std::size_t c) {
    const std::size_t begin = c * n / chunks;
    const std::size_t end = (c + 1) * n / chunks;
    if (begin < end) body(begin, end);
  });
}

double parallel_reduce_sum(std::size_t n,
                           const std::function<double(std::size_t, std::size_t)>& body,
                           std::size_t min_parallel) {
  GEORED_ENSURE(body, "parallel_reduce_sum requires a callable body");
  if (n == 0) return 0.0;
  if (n < min_parallel) return body(0, n);
  // Fixed chunk count: boundaries depend only on n, never on the pool size,
  // and partials combine in ascending chunk order — so the summation tree
  // (and the result's last bits) is identical at any thread count, nested
  // or top-level. Threads only decide where each chunk runs.
  double partials[kReduceChunks];
  const auto chunk_sum = [&](std::size_t c) {
    const std::size_t begin = c * n / kReduceChunks;
    const std::size_t end = (c + 1) * n / kReduceChunks;
    partials[c] = begin < end ? body(begin, end) : 0.0;
  };
  ThreadPool& pool = ThreadPool::global();
  const std::size_t threads = std::min(pool.thread_count(), kReduceChunks);
  if (threads == 1 || ThreadPool::in_parallel_chunk()) {
    for (std::size_t c = 0; c < kReduceChunks; ++c) chunk_sum(c);
  } else {
    pool.run_chunks(threads, [&](std::size_t t) {
      const std::size_t first = t * kReduceChunks / threads;
      const std::size_t last = (t + 1) * kReduceChunks / threads;
      for (std::size_t c = first; c < last; ++c) chunk_sum(c);
    });
  }
  double total = 0.0;
  for (const double partial : partials) total += partial;
  return total;
}

}  // namespace geored
