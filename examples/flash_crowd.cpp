// flash_crowd: demand-adaptive replication degree (paper §III-C).
//
// A quiet object suddenly goes viral in one region. With dynamic_degree
// enabled the manager grows k while the spike lasts and sheds the extra
// replicas afterwards — the paper's "create more replicas as the demand of
// an object increases, discard replicas as the demand decreases".
//
// Build & run:  ./build/examples/flash_crowd
#include <cstdio>

#include <memory>

#include "core/system.h"
#include "netcoord/embedding.h"
#include "topology/planetlab_model.h"

using namespace geored;

int main() {
  topo::PlanetLabModelConfig topo_config;
  topo_config.node_count = 100;
  const auto topology = topo::generate_planetlab_like(topo_config, 99);
  const auto coords =
      coord::run_rnp(topology, coord::RnpConfig{}, coord::GossipConfig{}, 7);

  constexpr std::size_t kDcs = 12;
  std::vector<place::CandidateInfo> candidates;
  for (std::size_t i = 0; i < kDcs; ++i) {
    candidates.push_back({static_cast<topo::NodeId>(i), coords[i].position,
                          std::numeric_limits<double>::infinity()});
  }
  std::vector<topo::NodeId> clients;
  std::vector<Point> client_coords;
  std::vector<bool> in_hot_region;
  for (topo::NodeId i = kDcs; i < topology.size(); ++i) {
    clients.push_back(i);
    client_coords.push_back(coords[i].position);
    // The spike hits European clients (regions named eu-*).
    const auto region = topology.node(i).region;
    in_hot_region.push_back(topology.region_names()[region].starts_with("eu-"));
  }
  std::size_t hot = 0;
  for (const bool flag : in_hot_region) hot += flag;
  std::printf("%zu clients, %zu in the flash-crowd region\n", clients.size(), hot);

  // Quiet baseline 0.0004/ms; a 25x spike during [120 s, 300 s).
  auto base =
      std::make_unique<wl::StaticWorkload>(std::vector<double>(clients.size(), 0.0004));
  wl::FlashCrowdWorkload workload(std::move(base), in_hot_region, 120'000.0, 300'000.0,
                                  25.0);

  sim::Simulator simulator;
  sim::Network network(simulator, topology);
  core::SystemConfig config;
  config.manager.replication_degree = 2;
  config.manager.dynamic_degree = true;
  config.manager.grow_accesses_per_replica = 900.0;
  config.manager.shrink_accesses_per_replica = 300.0;
  config.manager.min_degree = 1;
  config.manager.max_degree = 6;
  config.manager.migration.min_relative_gain = 0.02;
  config.epoch_ms = 30'000.0;
  config.selection = core::ReplicaSelection::kByCoordinates;

  core::ReplicationSystem system(simulator, network, candidates, clients, client_coords,
                                 workload, candidates[0].node, config, 5);
  system.run(480'000.0);

  std::printf("\nepoch   window        accesses  degree  mean-delay  placement\n");
  const auto& reports = system.epoch_reports();
  for (std::size_t e = 0; e < system.epoch_history().size(); ++e) {
    const auto& epoch = system.epoch_history()[e];
    const double start_s = static_cast<double>(e) * config.epoch_ms / 1000.0;
    std::printf("%5zu   [%3.0f,%3.0fs)  %8llu  %6zu  %8.1fms  ", epoch.epoch, start_s,
                start_s + config.epoch_ms / 1000.0,
                static_cast<unsigned long long>(epoch.accesses), reports[e].degree,
                epoch.mean_delay_ms);
    for (const auto node : epoch.placement) std::printf("dc%-3u ", node);
    std::printf("\n");
  }

  std::size_t max_degree = 0, final_degree = reports.back().degree;
  for (const auto& report : reports) max_degree = std::max(max_degree, report.degree);
  std::printf("\ndegree grew to %zu during the spike and settled back to %zu after it\n",
              max_degree, final_degree);
  return 0;
}
