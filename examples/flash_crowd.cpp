// flash_crowd: demand-adaptive replication degree (paper §III-C).
//
// A quiet object suddenly goes viral in Europe. With dynamic_degree enabled
// the manager grows k while the spike lasts and sheds the extra replicas
// afterwards — the paper's "create more replicas as the demand of an object
// increases, discard replicas as the demand decreases".
//
// The whole experiment lives in scenarios/flash_crowd.json; this example is
// a thin wrapper that loads it, runs the scenario engine, and reads the
// degree trajectory out of the per-epoch rows. Edit the json (spike factor,
// window, grow/shrink thresholds) and re-run — no recompilation needed.
//
// Build & run:  ./build/examples/flash_crowd
#include <algorithm>
#include <cstdio>

#include "scenario/runner.h"

using namespace geored;

int main() {
  const auto config =
      scenario::load_scenario_file(GEORED_SCENARIO_DIR "/flash_crowd.json");
  std::printf("scenario %s: %s\n", config.name.c_str(), config.description.c_str());
  std::printf("seed %llu, %zu epochs x %.0f ms\n\n",
              static_cast<unsigned long long>(config.seed), config.epochs,
              config.epoch_ms);

  const auto result = scenario::run_scenario(config);
  std::fputs(result.table().c_str(), stdout);

  std::size_t max_degree = 0;
  for (const auto& row : result.epochs)
    max_degree = std::max(max_degree, row.total_degree);
  const std::size_t final_degree = result.epochs.back().total_degree;
  std::printf("\ndegree grew to %zu during the spike and settled back to %zu after it\n",
              max_degree, final_degree);
  return 0;
}
