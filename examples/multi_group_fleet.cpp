// Multi-group fleet: many object groups sharing one replica budget.
//
// A store does not place one object — it places thousands of object groups,
// each with its own access population. This example builds a FleetManager
// over eight groups with very different popularity (Zipf demand) and
// geography, lets it run placement epochs for all groups in parallel on the
// deterministic thread pool, and watches the replica-budget allocator move
// replicas from cold groups to hot, spread-out ones.
//
// Build & run:  ./build/examples/multi_group_fleet
#include <algorithm>
#include <cstdio>

#include "common/random.h"
#include "core/fleet_manager.h"
#include "netcoord/embedding.h"
#include "topology/planetlab_model.h"

using namespace geored;

int main() {
  const auto topology = topo::generate_planetlab_like(topo::PlanetLabModelConfig{}, 42);
  const auto coords =
      coord::run_rnp(topology, coord::RnpConfig{}, coord::GossipConfig{}, /*seed=*/7);

  std::vector<place::CandidateInfo> candidates;
  for (topo::NodeId dc = 0; dc < 20; ++dc) {
    candidates.push_back({dc, coords[dc].position,
                          std::numeric_limits<double>::infinity()});
  }

  core::FleetConfig config;
  config.groups = 8;
  config.manager.summarizer.max_clusters = 4;
  config.manager.migration.min_relative_gain = 0.05;
  // 20 replicas to divide across 8 groups, each holding 1..5 of them. The
  // fleet owns the degrees from here: the allocator re-divides the budget
  // after every epoch round from measured delay-by-degree curves.
  config.replica_budget = 20;
  config.min_degree = 1;
  config.max_degree = 5;
  core::FleetManager fleet(candidates, config, /*seed=*/1);

  std::printf("fleet: %zu groups, budget %zu replicas (degree %zu..%zu)\n",
              fleet.group_count(), config.replica_budget, config.min_degree,
              config.max_degree);

  // Group g's clients live in a slice of the world; group popularity is
  // Zipf-like (group 0 the hottest). Every client access routes through the
  // fleet by object id, so summaries land at the right group's replicas.
  Rng rng(9);
  for (int day = 0; day < 4; ++day) {
    for (std::uint64_t object = 0; object < 4000; ++object) {
      const std::size_t g = fleet.group_of(object);
      const int accesses = static_cast<int>(12 / (g + 1));  // hot groups dominate
      const topo::NodeId first = static_cast<topo::NodeId>(20 + 25 * g);
      const std::uint64_t span =
          std::min<std::uint64_t>(25 + 100 * g, topology.size() - first);
      for (int i = 0; i < accesses; ++i) {
        const auto client = static_cast<topo::NodeId>(first + rng.below(span));
        fleet.serve(object, coords[client].position);
      }
    }

    const auto report = fleet.run_epochs();
    std::printf("day %d: %llu accesses, %zu/%zu groups migrated, degrees:", day,
                static_cast<unsigned long long>(report.total_accesses),
                report.groups_migrated, fleet.group_count());
    for (const auto degree : report.allocation->degree_per_group) {
      std::printf(" %zu", degree);
    }
    std::printf("  (hot -> cold)\n");
  }

  std::printf(
      "\nThe allocator gives the hot, geographically spread groups extra\n"
      "replicas and pins the cold tail at the minimum degree — the fleet-\n"
      "scale version of the paper's demand-adaptive degree (Section III-C).\n");
  return 0;
}
