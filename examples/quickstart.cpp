// Quickstart: the geored public API in ~60 lines.
//
// 1. Generate a wide-area topology (or load your own RTT matrix).
// 2. Assign network coordinates to every node with RNP.
// 3. Create a ReplicationManager over the candidate data centers.
// 4. Route client accesses through it.
// 5. Run a placement epoch: the manager summarizes recent usage,
//    macro-clusters it, and migrates replicas when worthwhile.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/replication_manager.h"
#include "netcoord/embedding.h"
#include "topology/planetlab_model.h"

using namespace geored;

int main() {
  // A 226-node PlanetLab-like world; node 0..19 will be data centers.
  const auto topology = topo::generate_planetlab_like(topo::PlanetLabModelConfig{}, 42);
  const auto coords =
      coord::run_rnp(topology, coord::RnpConfig{}, coord::GossipConfig{}, /*seed=*/7);
  std::printf("topology: %zu nodes; RNP median prediction error %.1f ms\n", topology.size(),
              coord::evaluate_embedding(topology, coords).absolute_error_ms.p50);

  std::vector<place::CandidateInfo> candidates;
  for (topo::NodeId dc = 0; dc < 20; ++dc) {
    candidates.push_back({dc, coords[dc].position,
                          std::numeric_limits<double>::infinity()});
  }

  core::ManagerConfig config;
  config.replication_degree = 3;       // the paper's k
  config.summarizer.max_clusters = 4;  // the paper's m (near-optimal per Fig. 3)
  config.migration.min_relative_gain = 0.05;
  core::ReplicationManager manager(candidates, config, /*seed=*/1);

  std::printf("initial (random) placement:");
  for (const auto node : manager.placement()) std::printf(" dc%u", node);
  std::printf("\n");

  // Clients (nodes 20..225) read the object; the manager routes each access
  // to the replica with the lowest predicted latency and summarizes it.
  for (int day = 0; day < 3; ++day) {
    for (topo::NodeId client = 20; client < topology.size(); ++client) {
      for (int access = 0; access < 50; ++access) {
        manager.serve(coords[client].position, /*data_weight=*/1.0);
      }
    }
    const auto report = manager.run_epoch();
    std::printf(
        "epoch %d: %llu accesses, %zu B of summaries shipped, "
        "est. delay %.1f -> %.1f ms, %s\n",
        day, static_cast<unsigned long long>(report.epoch_accesses), report.summary_bytes,
        report.old_estimated_delay_ms, report.new_estimated_delay_ms,
        report.decision.migrate ? "MIGRATED" : report.decision.reason.c_str());
    std::printf("         placement now:");
    for (const auto node : manager.placement()) std::printf(" dc%u", node);
    std::printf("\n");
  }
  return 0;
}
