// geo_cdn: a follow-the-sun content service on the event-driven simulator.
//
// A popular object is read from three continents whose activity peaks at
// local daytime. The full distributed system runs: clients pick replicas by
// network coordinates, replica servers summarize their user populations
// into micro-clusters, and a coordinator runs Algorithm 1 every epoch,
// migrating replicas when the latency gain clears the $-cost threshold.
// Watch the placement chase the sun and the per-epoch delay stay low.
//
// Build & run:  ./build/examples/geo_cdn
#include <cstdio>

#include <memory>

#include "core/system.h"
#include "netcoord/embedding.h"
#include "topology/planetlab_model.h"

using namespace geored;

int main() {
  topo::PlanetLabModelConfig topo_config;
  topo_config.node_count = 120;
  const auto topology = topo::generate_planetlab_like(topo_config, 2026);
  const auto coords =
      coord::run_rnp(topology, coord::RnpConfig{}, coord::GossipConfig{}, 7);

  // First 15 nodes are data centers; the rest are clients whose demand
  // peaks at local daytime (phase from longitude).
  constexpr std::size_t kDcs = 15;
  std::vector<place::CandidateInfo> candidates;
  for (std::size_t i = 0; i < kDcs; ++i) {
    candidates.push_back({static_cast<topo::NodeId>(i), coords[i].position,
                          std::numeric_limits<double>::infinity()});
  }
  std::vector<topo::NodeId> clients;
  std::vector<Point> client_coords;
  std::vector<double> phases;
  for (topo::NodeId i = kDcs; i < topology.size(); ++i) {
    clients.push_back(i);
    client_coords.push_back(coords[i].position);
    phases.push_back((topology.node(i).location.lon_deg + 180.0) / 360.0);
  }

  constexpr double kDayMs = 240'000.0;  // a compressed 4-minute "day"
  auto base =
      std::make_unique<wl::StaticWorkload>(std::vector<double>(clients.size(), 0.003));
  wl::DiurnalWorkload workload(std::move(base), phases, kDayMs, /*floor=*/0.05);

  sim::Simulator simulator;
  sim::Network network(simulator, topology);
  core::SystemConfig config;
  config.manager.replication_degree = 3;
  config.manager.summarizer.max_clusters = 4;
  config.manager.migration.min_relative_gain = 0.05;
  config.manager.migration.object_size_gb = 5.0;  // a 5 GB content bundle
  config.epoch_ms = kDayMs / 8.0;                 // re-place 8x per day
  config.object_bytes = 5u << 30;
  config.selection = core::ReplicaSelection::kByCoordinates;

  core::ReplicationSystem system(simulator, network, candidates, clients, client_coords,
                                 workload, candidates[0].node, config, 1);
  system.run(3 * kDayMs);  // three days

  std::printf("epoch  time-of-day  accesses  mean-delay  placement (MIGRATED when moved)\n");
  for (const auto& epoch : system.epoch_history()) {
    const double day_fraction =
        (static_cast<double>(epoch.epoch + 1) * config.epoch_ms) / kDayMs;
    std::printf("%5zu  %10.2f  %8llu  %8.1fms  ", epoch.epoch, day_fraction,
                static_cast<unsigned long long>(epoch.accesses), epoch.mean_delay_ms);
    for (const auto node : epoch.placement) std::printf("dc%-3u ", node);
    std::printf("%s\n", epoch.migrated ? " MIGRATED" : "");
  }

  const auto& stats = network.stats();
  std::printf("\noverall: %zu accesses, mean delay %.1f ms (p~ %.1f max)\n",
              system.overall_delay().count(), system.overall_delay().mean(),
              system.overall_delay().max());
  std::printf("traffic: %s\n", stats.to_string().c_str());
  std::size_t migrations = 0;
  for (const auto& report : system.epoch_reports()) migrations += report.decision.migrate;
  std::printf("migrations over three days: %zu\n", migrations);
  return 0;
}
