// coordinate_explorer: network coordinate systems side by side.
//
// Embeds the same wide-area topology with Vivaldi, RNP and GNP, reports
// their prediction accuracy, and then measures the property the paper
// actually relies on (§III-A): "if a user node knows the coordinates of
// replica locations, it can predict the closest replica with a high
// accuracy although it has never accessed the replicas before."
//
// Build & run:  ./build/examples/coordinate_explorer
#include <cstdio>

#include "common/random.h"
#include "netcoord/embedding.h"
#include "topology/planetlab_model.h"

using namespace geored;
using coord::NetworkCoordinate;

namespace {

/// How often the coordinate-predicted closest of k random replicas is the
/// truly closest one, and how many extra ms picking wrong costs on average.
struct SelectionQuality {
  double hit_rate = 0.0;
  double mean_penalty_ms = 0.0;
};

SelectionQuality closest_replica_prediction(const topo::Topology& topology,
                                            const std::vector<NetworkCoordinate>& coords,
                                            std::size_t k, std::uint64_t seed) {
  Rng rng(seed);
  std::size_t hits = 0, trials = 0;
  double penalty = 0.0;
  for (int t = 0; t < 20000; ++t) {
    const auto replicas = rng.sample_without_replacement(topology.size(), k + 1);
    const auto client = static_cast<topo::NodeId>(replicas[k]);  // last one is the client
    topo::NodeId predicted = 0, truly = 0;
    double best_pred = 1e18, best_true = 1e18;
    for (std::size_t r = 0; r < k; ++r) {
      const auto node = static_cast<topo::NodeId>(replicas[r]);
      const double est = predicted_rtt_ms(coords[client], coords[node]);
      const double actual = topology.rtt_ms(client, node);
      if (est < best_pred) {
        best_pred = est;
        predicted = node;
      }
      if (actual < best_true) {
        best_true = actual;
        truly = node;
      }
    }
    ++trials;
    hits += predicted == truly;
    penalty += topology.rtt_ms(client, predicted) - best_true;
  }
  return {static_cast<double>(hits) / static_cast<double>(trials),
          penalty / static_cast<double>(trials)};
}

}  // namespace

int main() {
  const auto topology = topo::generate_planetlab_like(topo::PlanetLabModelConfig{}, 42);
  std::printf("embedding a %zu-node PlanetLab-like topology\n\n", topology.size());

  struct Entry {
    const char* name;
    std::vector<NetworkCoordinate> coords;
  };
  std::vector<Entry> systems;
  systems.push_back(
      {"vivaldi", coord::run_vivaldi(topology, coord::VivaldiConfig{}, {}, 7)});
  systems.push_back({"rnp", coord::run_rnp(topology, coord::RnpConfig{}, {}, 7)});
  systems.push_back({"gnp", coord::run_gnp(topology, coord::GnpConfig{})});

  std::printf("%-8s %14s %14s %20s %18s\n", "system", "abs-err p50", "abs-err p90",
              "closest-of-3 hit", "wrong-pick cost");
  for (const auto& entry : systems) {
    const auto quality = coord::evaluate_embedding(topology, entry.coords);
    const auto selection = closest_replica_prediction(topology, entry.coords, 3, 11);
    std::printf("%-8s %11.2fms %11.2fms %19.1f%% %15.2fms\n", entry.name,
                quality.absolute_error_ms.p50, quality.absolute_error_ms.p90,
                100.0 * selection.hit_rate, selection.mean_penalty_ms);
  }

  std::printf(
      "\nThe paper's takeaway: with RNP a client that has never probed the\n"
      "replicas still finds the closest one almost always, and the rare\n"
      "wrong pick costs only a few ms — this is what lets the system route\n"
      "accesses by coordinates instead of measuring every replica.\n");
  return 0;
}
