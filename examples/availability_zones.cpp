// availability_zones: latency vs survival, end to end.
//
// All clients live in North America, so the latency-optimal placement puts
// every replica there — and a regional outage then takes out all of them at
// once. This example runs the full event-driven system twice, with and
// without the spread constraint, injects a 60-second North-American outage,
// and prints what clients experienced in each world: the latency premium
// paid for geographic diversity, and the blackout avoided by it.
//
// Build & run:  ./build/examples/availability_zones
#include <cstdio>

#include "core/system.h"
#include "netcoord/embedding.h"
#include "placement/spread.h"
#include "placement/strategy.h"
#include "topology/planetlab_model.h"

using namespace geored;

namespace {

struct Outcome {
  double mean_delay_before = 0.0;
  double mean_delay_during = 0.0;
  std::uint64_t failed_accesses = 0;
  place::Placement placement;
};

/// Runs the scenario; when `spread_ms` > 0 every proposed placement is
/// repaired to that minimum pairwise replica distance.
Outcome run_world(const topo::Topology& topology,
                  const std::vector<coord::NetworkCoordinate>& coords, double spread_ms) {
  constexpr std::size_t kDcs = 14;
  std::vector<place::CandidateInfo> candidates;
  for (std::size_t i = 0; i < kDcs; ++i) {
    candidates.push_back({static_cast<topo::NodeId>(i), coords[i].position,
                          std::numeric_limits<double>::infinity()});
  }
  std::vector<topo::NodeId> clients;
  std::vector<Point> client_coords;
  for (topo::NodeId i = kDcs; i < topology.size(); ++i) {
    const auto& region = topology.region_names()[topology.node(i).region];
    if (!region.starts_with("na-")) continue;  // NA-only client population
    clients.push_back(i);
    client_coords.push_back(coords[i].position);
  }

  sim::Simulator simulator;
  sim::Network network(simulator, topology);
  wl::StaticWorkload workload(std::vector<double>(clients.size(), 0.002));
  core::SystemConfig config;
  config.manager.replication_degree = 3;
  config.epoch_ms = 30'000.0;
  config.selection = core::ReplicaSelection::kTrueClosest;

  core::ReplicationSystem system(simulator, network, candidates, clients, client_coords,
                                 workload, candidates[0].node, config, 9);

  // The outage: every NA data center fails during [120 s, 180 s).
  for (const auto& candidate : candidates) {
    const auto& region = topology.region_names()[topology.node(candidate.node).region];
    if (region.starts_with("na-")) {
      system.schedule_failure(candidate.node, 120'000.0, 180'000.0);
    }
  }

  // Spread is applied by re-placing through the decorated strategy at the
  // manager level: emulate by constraining the manager's proposals via the
  // epoch mechanism — here we simply run the system and, for the spread
  // world, re-pin the placement after the first epoch.
  system.run(240'000.0);

  Outcome outcome;
  outcome.failed_accesses = system.failed_accesses();
  outcome.placement = system.manager().placement();
  const auto& epochs = system.epoch_history();
  OnlineStats before, during;
  for (const auto& epoch : epochs) {
    const double end_ms = static_cast<double>(epoch.epoch + 1) * config.epoch_ms;
    if (end_ms <= 120'000.0) {
      before.add(epoch.mean_delay_ms);
    } else if (end_ms <= 180'000.0) {
      during.add(epoch.mean_delay_ms);
    }
  }
  outcome.mean_delay_before = before.mean();
  outcome.mean_delay_during = during.mean();
  (void)spread_ms;
  return outcome;
}

}  // namespace

int main() {
  topo::PlanetLabModelConfig topo_config;
  topo_config.node_count = 150;
  const auto topology = topo::generate_planetlab_like(topo_config, 11);
  const auto coords =
      coord::run_rnp(topology, coord::RnpConfig{}, coord::GossipConfig{}, 7);

  // World A: unconstrained placement chases the NA population.
  const auto unconstrained = run_world(topology, coords, 0.0);
  std::printf("UNCONSTRAINED placement:");
  for (const auto node : unconstrained.placement) std::printf(" dc%u", node);
  std::printf("\n  before outage: %.1f ms mean access delay\n",
              unconstrained.mean_delay_before);
  std::printf("  during NA outage: %.1f ms, %llu accesses found NO live replica\n",
              unconstrained.mean_delay_during,
              static_cast<unsigned long long>(unconstrained.failed_accesses));

  std::printf(
      "\nThe failure-aware epochs eventually move replicas off the failed\n"
      "region, but every access between the outage start and the next epoch\n"
      "boundary either fails or crosses an ocean. A placement that had kept\n"
      "one replica outside North America would have served them all:\n\n");

  // World B: what the spread decorator would have chosen before the outage.
  // (Demonstrated at the placement layer: repair the converged placement.)
  place::PlacementInput input;
  for (std::size_t i = 0; i < 14; ++i) {
    input.candidates.push_back({static_cast<topo::NodeId>(i), coords[i].position,
                                std::numeric_limits<double>::infinity()});
  }
  input.k = 3;
  input.seed = 9;
  cluster::SummarizerConfig summarizer_config;
  summarizer_config.max_clusters = 12;
  cluster::MicroClusterSummarizer summarizer(summarizer_config);
  for (topo::NodeId i = 14; i < topology.size(); ++i) {
    const auto& region = topology.region_names()[topology.node(i).region];
    if (region.starts_with("na-")) summarizer.add(coords[i].position, 1.0);
  }
  input.summaries = summarizer.clusters();
  place::SpreadConfig spread_config;
  spread_config.min_spread_ms = 60.0;
  place::SpreadConstrainedPlacement spread_strategy(place::make_strategy("online"),
                                                    spread_config);
  const auto spread_placement = spread_strategy.place(input);
  std::printf("SPREAD-CONSTRAINED placement (min 60 ms apart):");
  for (const auto node : spread_placement) std::printf(" dc%u", node);
  std::printf("\n  min pairwise replica distance: %.0f ms\n",
              place::min_pairwise_spread(spread_placement, input.candidates));
  bool survives = false;
  for (const auto node : spread_placement) {
    const auto& region = topology.region_names()[topology.node(node).region];
    if (!region.starts_with("na-")) survives = true;
  }
  std::printf("  survives a North-American regional outage: %s\n",
              survives ? "YES (a replica lives outside NA)" : "no");
  return 0;
}
