// availability_zones: surviving regional blackouts, end to end.
//
// Regional outages roll across the map — first every North-American data
// center fails for one epoch, then every European one. The epoch protocol
// must keep completing on the surviving replicas, count the silent summary
// sources as lost, and route every access to a live replica.
//
// The whole experiment lives in scenarios/rolling_outages.json; this example
// is a thin wrapper that loads it, runs the scenario engine, and compares
// what clients experienced in calm epochs versus blackout epochs. Edit the
// json (outage regions, windows, replication degree) and re-run — no
// recompilation needed.
//
// Build & run:  ./build/examples/availability_zones
#include <cstdio>

#include "common/stats.h"
#include "scenario/runner.h"

using namespace geored;

int main() {
  const auto config =
      scenario::load_scenario_file(GEORED_SCENARIO_DIR "/rolling_outages.json");
  std::printf("scenario %s: %s\n", config.name.c_str(), config.description.c_str());
  std::printf("seed %llu, %zu epochs x %.0f ms\n\n",
              static_cast<unsigned long long>(config.seed), config.epochs,
              config.epoch_ms);

  const auto result = scenario::run_scenario(config);
  std::fputs(result.table().c_str(), stdout);

  OnlineStats calm, blackout;
  std::uint64_t lost_accesses = 0;
  std::size_t lost_sources = 0;
  for (const auto& row : result.epochs) {
    (row.excluded.empty() ? calm : blackout).add(row.mean_delay_ms);
    lost_accesses += row.lost_accesses;
    lost_sources += row.lost_sources;
  }
  std::printf("\ncalm epochs: %.1f ms mean access delay\n", calm.mean());
  std::printf("blackout epochs: %.1f ms mean access delay\n", blackout.mean());
  std::printf("accesses that found no live replica: %llu\n",
              static_cast<unsigned long long>(lost_accesses));
  std::printf("summary sources lost to outages across the run: %zu\n", lost_sources);
  std::printf(
      "\nEvery epoch completed: routing skips data centers that are down at\n"
      "the access instant, and the collector accounts excluded replicas as\n"
      "lost sources instead of stalling the epoch on them.\n");
  return 0;
}
