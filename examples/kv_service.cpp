// kv_service: a geo-replicated key-value service that places itself.
//
// 1000 objects hashed into 16 groups ("virtual objects", paper §II-A), each
// group independently placed by the paper's online clustering. Two client
// populations with different tastes: European clients mostly read European
// content, American clients mostly American. Watch the per-group
// placements specialize after the first placement epoch and the read
// latency drop — while writes keep quorum durability (n=3, r=1, w=2).
//
// Build & run:  ./build/examples/kv_service
#include <cstdio>

#include "common/random.h"
#include "netcoord/embedding.h"
#include "store/kvstore.h"
#include "topology/planetlab_model.h"

using namespace geored;

int main() {
  topo::PlanetLabModelConfig topo_config;
  topo_config.node_count = 120;
  const auto topology = topo::generate_planetlab_like(topo_config, 7);
  const auto coords =
      coord::run_rnp(topology, coord::RnpConfig{}, coord::GossipConfig{}, 7);

  constexpr std::size_t kDcs = 15;
  std::vector<place::CandidateInfo> candidates;
  for (std::size_t i = 0; i < kDcs; ++i) {
    candidates.push_back({static_cast<topo::NodeId>(i), coords[i].position,
                          std::numeric_limits<double>::infinity()});
  }
  // Split clients into "west" (the Americas) and "east" (everything else).
  std::vector<topo::NodeId> west, east;
  for (topo::NodeId i = kDcs; i < topology.size(); ++i) {
    const auto& name = topology.region_names()[topology.node(i).region];
    (name.starts_with("na-") || name == "south-america" ? west : east).push_back(i);
  }
  std::printf("%zu west clients, %zu east clients, %zu data centers\n", west.size(),
              east.size(), kDcs);

  sim::Simulator simulator;
  sim::Network network(simulator, topology);
  store::StoreConfig config;
  config.quorum = {3, 1, 2};
  config.groups = 16;
  config.manager.summarizer.max_clusters = 4;
  config.manager.migration.min_relative_gain = 0.05;
  store::ReplicatedKvStore kv(simulator, network, candidates, config, 1);

  // Objects 0..499 are "western" content, 500..999 "eastern".
  constexpr std::size_t kObjects = 1000;
  Rng rng(99);
  const auto pick_object = [&](bool is_west) {
    const bool local = rng.bernoulli(0.8);
    const bool from_west = local == is_west;
    return static_cast<store::ObjectId>((from_west ? 0 : 500) + rng.below(500));
  };
  const auto pick_client = [&](bool* is_west) {
    *is_west = rng.bernoulli(0.5);
    const auto& pool = *is_west ? west : east;
    return pool[rng.below(pool.size())];
  };

  // Seed every object once so reads have something to find.
  for (store::ObjectId id = 0; id < kObjects; ++id) {
    const auto writer = id < 500 ? west[id % west.size()] : east[id % east.size()];
    kv.put(writer, coords[writer].position, id, std::string(256, 'x'),
           [](const store::PutResult&) {});
  }
  simulator.run();

  std::printf("\n%-7s %12s %12s %12s %10s %12s\n", "epoch", "reads", "get p~mean",
              "put p~mean", "stale", "migrations");
  for (int epoch = 0; epoch < 4; ++epoch) {
    const std::uint64_t reads_before = kv.reads();
    const double get_before = kv.get_latency().sum();
    const double put_before = kv.put_latency().sum();
    const std::uint64_t writes_before = kv.writes();
    const std::uint64_t stale_before = kv.stale_reads();

    for (int op = 0; op < 12000; ++op) {
      bool is_west = false;
      const auto client = pick_client(&is_west);
      const auto id = pick_object(is_west);
      if (rng.bernoulli(0.95)) {
        kv.get(client, coords[client].position, id, [](const store::GetResult&) {});
      } else {
        kv.put(client, coords[client].position, id, std::string(256, 'y'),
               [](const store::PutResult&) {});
      }
    }
    simulator.run();

    const std::uint64_t reads = kv.reads() - reads_before;
    const std::uint64_t writes = kv.writes() - writes_before;
    const double get_mean = (kv.get_latency().sum() - get_before) / static_cast<double>(reads);
    const double put_mean = (kv.put_latency().sum() - put_before) / static_cast<double>(writes);
    const std::uint64_t stale = kv.stale_reads() - stale_before;

    const auto reports = kv.run_placement_epochs();
    simulator.run();  // let group migrations land
    std::size_t migrations = 0;
    for (const auto& report : reports) migrations += report.decision.migrate ? 1 : 0;

    std::printf("%-7d %12llu %10.1fms %10.1fms %10llu %12zu\n", epoch,
                static_cast<unsigned long long>(reads), get_mean, put_mean,
                static_cast<unsigned long long>(stale), migrations);
  }

  std::printf("\nfinal per-group placements (dc ids):\n");
  for (std::uint32_t g = 0; g < config.groups; ++g) {
    std::printf("  group %2u:", g);
    for (const auto node : kv.placement_of_group(g)) std::printf(" dc%-2u", node);
    std::printf("\n");
  }
  std::printf("\ntraffic: %s\n", network.stats().to_string().c_str());
  return 0;
}
